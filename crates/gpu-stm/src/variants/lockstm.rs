//! GPU-STM proper: the word-/lock-based STM of Section 3, parameterised by
//! validation strategy (TBV or hierarchical) and commit-lock acquisition
//! scheme (encounter-time lock-sorting or the GPU-specific backoff).
//!
//! The four paper variants map to:
//!
//! | Paper name        | Constructor                |
//! |-------------------|----------------------------|
//! | STM-TBV-Sorting   | [`LockStm::tbv_sorting`]   |
//! | STM-HV-Sorting    | [`LockStm::hv_sorting`]    |
//! | STM-HV-Backoff    | [`LockStm::hv_backoff`]    |
//! | (ablation only)   | [`LockStm::tbv_backoff`]   |

use crate::api::{lane_addrs, lane_vals, Stm};
use crate::config::{Locking, StmConfig, Validation};
use crate::history::{Access, CommittedTx, Recorder};
use crate::shared::StmShared;
use crate::stats::{stats_handle, AbortCause, Phase, StatsHandle};
use crate::trace::{TxEventKind, TxTrace, TxTraceSink};
use crate::validation::{post_validation, vbv};
use crate::version_lock::VersionLock;
use crate::warptx::WarpTx;
use gpu_sim::{AtomicOp, LaneAddrs, LaneMask, LaneVals, WarpCtx, WARP_SIZE};

/// Deliberately seeded correctness bugs, used to validate the verifier:
/// each mutation breaks one invariant of Algorithm 3 in a way that a
/// single benign schedule cannot observe but exhaustive interleaving
/// exploration (`tm-verify`) must catch. All mutations default to off and
/// can only be enabled through [`LockStm::with_mutation`], which is gated
/// behind `cfg(test)` / the `mutants` cargo feature.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Mutation {
    /// Skip commit-time validation (lines 75–78): a transaction whose read
    /// stripe was overwritten after its snapshot commits anyway, so the
    /// history contains an inconsistent read under a racy interleaving.
    pub skip_validation: bool,
    /// Acquire commit locks blocking, in encounter order, instead of the
    /// release-and-retry sorted protocol (lines 43–52): two transactions
    /// that touched the same two stripes in opposite orders deadlock under
    /// the right interleaving.
    pub unsorted_locks: bool,
    /// Publish the write-set *after* releasing/version-updating the locks
    /// instead of before (reordering lines 80–84, i.e. dropping the
    /// release fence of line 82): a reader admitted by the new version can
    /// still observe pre-transaction values.
    pub late_writeback: bool,
}

impl Mutation {
    /// True when any mutation is enabled.
    pub fn any(&self) -> bool {
        self.skip_validation || self.unsorted_locks || self.late_writeback
    }
}

/// The lock-based GPU-STM runtime (Algorithm 3).
#[derive(Clone)]
pub struct LockStm {
    shared: StmShared,
    cfg: StmConfig,
    validation: Validation,
    locking: Locking,
    stats: StatsHandle,
    recorder: Option<Recorder>,
    trace: TxTrace,
    name: &'static str,
    mutation: Mutation,
}

impl std::fmt::Debug for LockStm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockStm")
            .field("name", &self.name)
            .field("validation", &self.validation)
            .field("locking", &self.locking)
            .finish_non_exhaustive()
    }
}

impl LockStm {
    fn new(
        shared: StmShared,
        cfg: StmConfig,
        validation: Validation,
        locking: Locking,
        name: &'static str,
    ) -> Self {
        LockStm {
            shared,
            cfg,
            validation,
            locking,
            stats: stats_handle(),
            recorder: None,
            trace: TxTrace::off(),
            name,
            mutation: Mutation::default(),
        }
    }

    /// Timestamp-based validation with encounter-time lock-sorting
    /// (the paper's STM-TBV-Sorting).
    pub fn tbv_sorting(shared: StmShared, cfg: StmConfig) -> Self {
        LockStm::new(shared, cfg, Validation::Tbv, Locking::Sorted, "STM-TBV-Sorting")
    }

    /// Hierarchical validation with encounter-time lock-sorting
    /// (the paper's STM-HV-Sorting).
    pub fn hv_sorting(shared: StmShared, cfg: StmConfig) -> Self {
        LockStm::new(shared, cfg, Validation::Hv, Locking::Sorted, "STM-HV-Sorting")
    }

    /// Hierarchical validation with the two-step parallel-then-serial
    /// backoff lock acquisition (the paper's STM-HV-Backoff).
    pub fn hv_backoff(shared: StmShared, cfg: StmConfig) -> Self {
        LockStm::new(shared, cfg, Validation::Hv, Locking::Backoff, "STM-HV-Backoff")
    }

    /// Timestamp-based validation with backoff locking — not evaluated in
    /// the paper, provided for the ablation benches.
    pub fn tbv_backoff(shared: StmShared, cfg: StmConfig) -> Self {
        LockStm::new(shared, cfg, Validation::Tbv, Locking::Backoff, "STM-TBV-Backoff")
    }

    /// Seeds a correctness [`Mutation`] — verifier-validation use only.
    #[cfg(any(test, feature = "mutants"))]
    pub fn with_mutation(mut self, mutation: Mutation) -> Self {
        self.mutation = mutation;
        self
    }

    /// The seeded mutation (all-off in production builds).
    pub fn mutation(&self) -> Mutation {
        self.mutation
    }

    /// Attaches a history recorder (for the opacity checker).
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Attaches a transaction-lifecycle trace sink (pure observation; see
    /// [`crate::trace`]).
    pub fn with_trace(mut self, sink: TxTraceSink) -> Self {
        self.trace = TxTrace::to(sink);
        self
    }

    /// Renames the variant (used by STM-Optimized, which delegates here).
    pub(crate) fn renamed(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// The validation strategy in use.
    pub fn validation(&self) -> Validation {
        self.validation
    }

    /// The locking strategy in use.
    pub fn locking(&self) -> Locking {
        self.locking
    }

    /// Global metadata handle.
    pub fn shared(&self) -> &StmShared {
        &self.shared
    }

    async fn charge_set_append(&self, ctx: &WarpCtx, mask: LaneMask) {
        let ops = if self.cfg.coalesced_sets { 1 } else { mask.count().max(1) };
        ctx.local_access(mask, ops).await;
    }

    fn lock_word_addrs(&self, w: &WarpTx, mask: LaneMask, k: usize) -> LaneAddrs {
        lane_addrs(mask, |l| {
            let e = w.locklog[l].nth_sorted(k).expect("lock-log cursor in range");
            self.shared.lock_addr(e.lock)
        })
    }

    /// Releases the first `w.acquired[l]` sorted locks of each lane in
    /// `lanes` by decrementing the lock words (Algorithm 3 lines 53–55).
    async fn release_locks(&self, w: &mut WarpTx, ctx: &WarpCtx, lanes: LaneMask) {
        let max = lanes.iter().map(|l| w.acquired[l]).max().unwrap_or(0);
        for k in 0..max {
            let m = lanes.filter(|l| k < w.acquired[l]);
            if m.none() {
                break;
            }
            let addrs = self.lock_word_addrs(w, m, k);
            let dec = [u32::MAX; WARP_SIZE]; // wrapping add of -1
            ctx.atomic_rmw(m, AtomicOp::Add, &addrs, &dec).await;
        }
        for l in lanes.iter() {
            w.acquired[l] = 0;
        }
    }

    /// Releases all locks of committing lanes, publishing `version` to
    /// written stripes and merely unlocking read-only stripes
    /// (Algorithm 3 lines 56–61).
    async fn release_and_update_locks(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        lanes: LaneMask,
        versions: &[u32; WARP_SIZE],
    ) {
        let max = lanes.iter().map(|l| w.locklog[l].len()).max().unwrap_or(0);
        for k in 0..max {
            let m = lanes.filter(|l| k < w.locklog[l].len());
            if m.none() {
                break;
            }
            let wr =
                m.filter(|l| w.locklog[l].nth_sorted(k).expect("lock-log cursor in range").write);
            let rd = m & !wr;
            if wr.any() {
                let addrs = self.lock_word_addrs(w, wr, k);
                let vals = lane_vals(wr, |l| VersionLock::unlocked(versions[l]).bits());
                ctx.store(wr, &addrs, &vals).await; // line 59
            }
            if rd.any() {
                let addrs = self.lock_word_addrs(w, rd, k);
                let dec = [u32::MAX; WARP_SIZE];
                ctx.atomic_rmw(rd, AtomicOp::Add, &addrs, &dec).await; // line 61
            }
        }
        for l in lanes.iter() {
            w.acquired[l] = 0;
        }
    }

    /// `GetLocksAndTBV` (Algorithm 3 lines 43–52), warp-wide in sorted
    /// rounds. Returns `(winners, losers)`; losers have released whatever
    /// they acquired and keep their logs for a retry.
    async fn acquire_sorted(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        active: LaneMask,
    ) -> (LaneMask, LaneMask) {
        let mut trying = active;
        let mut failed = LaneMask::EMPTY;
        let max = active.iter().map(|l| w.locklog[l].len()).max().unwrap_or(0);
        for k in 0..max {
            let m = trying.filter(|l| k < w.locklog[l].len());
            if m.none() {
                break;
            }
            let addrs = self.lock_word_addrs(w, m, k);
            let ones = [1u32; WARP_SIZE];
            let old = ctx.atomic_rmw(m, AtomicOp::Or, &addrs, &ones).await; // line 45
            for l in m.iter() {
                let vl = VersionLock(old[l]);
                if vl.is_locked() {
                    // Someone else holds it: stop acquiring, release later.
                    let e = w.locklog[l].nth_sorted(k).expect("lock-log cursor in range");
                    self.trace.emit(ctx, TxEventKind::Conflict { stripe: e.lock });
                    failed |= LaneMask::lane(l);
                    trying = trying.without(l);
                } else {
                    w.acquired[l] = k + 1;
                    let e = w.locklog[l].nth_sorted(k).expect("lock-log cursor in range");
                    if e.read && vl.version() > w.snapshot[l] {
                        w.pass_tbv[l] = false; // line 51
                    }
                }
            }
        }
        if failed.any() {
            self.release_locks(w, ctx, failed).await; // line 47
            self.stats.borrow_mut().lock_retries += failed.count() as u64;
        }
        self.trace.emit(ctx, TxEventKind::Lock { lanes: active.count(), busy: failed.count() });
        (trying, failed)
    }

    /// Blocking single-lane acquisition used by the backoff scheme's
    /// serial second step: retries (with deterministic exponential jitter)
    /// until every lock of `lane` is held.
    async fn acquire_blocking_one(&self, w: &mut WarpTx, ctx: &WarpCtx, lane: usize) {
        let m = LaneMask::lane(lane);
        let mut retry = 0u32;
        loop {
            let (winners, _losers) = self.acquire_sorted(w, ctx, m).await;
            if winners.contains(lane) {
                return;
            }
            // Deterministic jitter: exponential in retries, offset by warp id.
            let base = 64u64 << retry.min(6);
            let jitter = (ctx.id().thread_id(lane) as u64).wrapping_mul(2654435761) % base;
            ctx.idle(base + jitter).await;
            retry += 1;
        }
    }

    /// The `unsorted_locks` mutant's acquisition: walk each lane's lock-log
    /// in *encounter* order and spin until every lock is held, never
    /// releasing on contention. Without the global sorted order this can
    /// deadlock: two transactions that touched the same two stripes in
    /// opposite orders each hold one lock and spin on the other.
    async fn acquire_unsorted_blocking(&self, w: &mut WarpTx, ctx: &WarpCtx, active: LaneMask) {
        let max = active.iter().map(|l| w.locklog[l].len()).max().unwrap_or(0);
        for k in 0..max {
            let mut waiting = active.filter(|l| k < w.locklog[l].len());
            while waiting.any() {
                let addrs = lane_addrs(waiting, |l| {
                    let e = w.locklog[l].nth_inserted(k).expect("lock-log cursor in range");
                    self.shared.lock_addr(e.lock)
                });
                let ones = [1u32; WARP_SIZE];
                let old = ctx.atomic_rmw(waiting, AtomicOp::Or, &addrs, &ones).await;
                for l in waiting.iter() {
                    let vl = VersionLock(old[l]);
                    if !vl.is_locked() {
                        let e = w.locklog[l].nth_inserted(k).expect("lock-log cursor in range");
                        if e.read && vl.version() > w.snapshot[l] {
                            w.pass_tbv[l] = false;
                        }
                        waiting = waiting.without(l);
                    }
                }
                if waiting.any() {
                    ctx.idle(20).await;
                }
            }
        }
        // All locks held; the held set equals the whole log, so the sorted
        // release walk stays correct.
        for l in active.iter() {
            w.acquired[l] = w.locklog[l].len();
        }
    }

    /// TL2-style read validation used only in the `lock_read_set = false`
    /// ablation: with read stripes *unlocked* at commit, every read stripe
    /// must be unheld (or held by us) and no newer than the snapshot.
    /// Returns the failing lanes. Under lockstep execution this scheme
    /// starves on cross read/write pairs — the Section 3.2.2 example.
    async fn validate_reads_unlocked(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        lanes: LaneMask,
    ) -> LaneMask {
        let mut failed = LaneMask::EMPTY;
        let mut checking = lanes;
        let rounds = w.reads.max_len();
        for k in 0..rounds {
            let m = checking.filter(|l| k < w.reads.len(l));
            if m.none() {
                break;
            }
            let laddrs = lane_addrs(m, |l| {
                self.shared.lock_addr(self.shared.lock_index(w.reads.get(l, k).addr))
            });
            let words = ctx.load(m, &laddrs).await;
            for l in m.iter() {
                let vl = VersionLock(words[l]);
                let idx = self.shared.lock_index(w.reads.get(l, k).addr);
                let held_by_us = w.locklog[l].get(idx).is_some();
                if (vl.is_locked() && !held_by_us) || vl.version() > w.snapshot[l] {
                    failed |= LaneMask::lane(l);
                    checking = checking.without(l);
                }
            }
        }
        failed
    }

    /// Lines 80–81: publish the buffered write-set to global memory.
    async fn publish_writes(&self, w: &WarpTx, ctx: &WarpCtx, ok: LaneMask) {
        let rounds = ok.iter().map(|l| w.writes.len(l)).max().unwrap_or(0);
        for k in 0..rounds {
            let m = ok.filter(|l| k < w.writes.len(l));
            if m.none() {
                break;
            }
            let addrs = lane_addrs(m, |l| w.writes.get(l, k).addr);
            let vals = lane_vals(m, |l| w.writes.get(l, k).val);
            ctx.store(m, &addrs, &vals).await;
        }
    }

    /// Commit tail for lanes that hold all their locks: validation,
    /// write-back, clock increment, version publication (lines 75–85).
    /// Returns the lanes that committed (the rest aborted).
    async fn commit_locked(&self, w: &mut WarpTx, ctx: &WarpCtx, lanes: LaneMask) -> LaneMask {
        w.enter_phase(ctx.now(), Phase::Commit);
        // Write-only-locking ablation: reads must be validated while
        // unlocked, TL2-style. A stripe held by another transaction is a
        // hard failure (its value may be mid-update, so even value-based
        // validation would be unsound).
        let mut hard_failed = LaneMask::EMPTY;
        if !self.cfg.lock_read_set {
            hard_failed = self.validate_reads_unlocked(w, ctx, lanes).await;
            if hard_failed.any() {
                let mut st = self.stats.borrow_mut();
                for _ in 0..hard_failed.count() {
                    st.record_abort(AbortCause::CommitTbv);
                }
                drop(st);
                self.trace.emit(
                    ctx,
                    TxEventKind::Abort { cause: AbortCause::CommitTbv, lanes: hard_failed.count() },
                );
            }
        }
        // Lines 75–78: value-based validation where TBV failed. The
        // skip_validation mutant drops the check and commits regardless.
        let need_check = if self.mutation.skip_validation {
            LaneMask::EMPTY
        } else {
            (lanes & !hard_failed).filter(|l| !w.pass_tbv[l])
        };
        let mut failed = hard_failed;
        if need_check.any() {
            match self.validation {
                Validation::Hv => {
                    let vbv_failed = vbv(w, ctx, need_check).await;
                    failed |= vbv_failed;
                    let filtered = (need_check & !vbv_failed).count() as u64;
                    let mut st = self.stats.borrow_mut();
                    st.false_conflicts_filtered += filtered;
                    for _ in 0..vbv_failed.count() {
                        st.record_abort(AbortCause::CommitVbv);
                    }
                    drop(st);
                    if vbv_failed.any() {
                        self.trace.emit(
                            ctx,
                            TxEventKind::Abort {
                                cause: AbortCause::CommitVbv,
                                lanes: vbv_failed.count(),
                            },
                        );
                    }
                    self.trace.emit(
                        ctx,
                        TxEventKind::Validate {
                            checked: need_check.count(),
                            failed: vbv_failed.count(),
                        },
                    );
                }
                Validation::Tbv => {
                    // Pure TBV: a stale read stripe is a conflict, full stop.
                    failed |= need_check;
                    let mut st = self.stats.borrow_mut();
                    for _ in 0..need_check.count() {
                        st.record_abort(AbortCause::CommitTbv);
                    }
                    drop(st);
                    self.trace.emit(
                        ctx,
                        TxEventKind::Abort {
                            cause: AbortCause::CommitTbv,
                            lanes: need_check.count(),
                        },
                    );
                    self.trace.emit(
                        ctx,
                        TxEventKind::Validate {
                            checked: need_check.count(),
                            failed: need_check.count(),
                        },
                    );
                }
            }
        }
        if failed.any() {
            w.enter_phase(ctx.now(), Phase::Locking);
            self.release_locks(w, ctx, failed).await;
            w.enter_phase(ctx.now(), Phase::Commit);
            if let Some(rec) = &self.recorder {
                rec.borrow_mut().aborts += failed.count() as u64;
            }
            for l in failed.iter() {
                w.reset_lane(l);
            }
        }
        let ok = lanes & !failed;
        if ok.none() {
            return LaneMask::EMPTY;
        }

        ctx.fence(ok).await; // line 79
        if !self.mutation.late_writeback {
            self.publish_writes(w, ctx, ok).await; // lines 80–81
            ctx.fence(ok).await; // line 82
        }

        // Line 83: version <- Atomic_inc(g_clock) + 1.
        let clock_addrs = [self.shared.clock; WARP_SIZE];
        let ones = [1u32; WARP_SIZE];
        let old = ctx.atomic_rmw(ok, AtomicOp::Add, &clock_addrs, &ones).await;
        let mut versions = [0u32; WARP_SIZE];
        for l in ok.iter() {
            versions[l] = old[l] + 1;
        }

        // Line 84.
        self.release_and_update_locks(w, ctx, ok, &versions).await;

        // late_writeback mutant: the new versions are public but the data
        // is not — a reader admitted by the version check still sees
        // pre-transaction values.
        if self.mutation.late_writeback {
            self.publish_writes(w, ctx, ok).await;
        }

        {
            let mut st = self.stats.borrow_mut();
            st.commits += ok.count() as u64;
            for l in ok.iter() {
                st.reads_committed += w.reads.len(l) as u64;
                st.writes_committed += w.writes.len(l) as u64;
            }
        }
        if let Some(rec) = &self.recorder {
            let mut h = rec.borrow_mut();
            for l in ok.iter() {
                h.record(CommittedTx {
                    tid: ctx.id().thread_id(l),
                    version: Some(versions[l]),
                    snapshot: w.snapshot[l],
                    reads: w
                        .reads
                        .iter_lane(l)
                        .map(|e| Access { addr: e.addr, val: e.val })
                        .collect(),
                    writes: w
                        .writes
                        .iter_lane(l)
                        .map(|e| Access { addr: e.addr, val: e.val })
                        .collect(),
                });
            }
        }
        for l in ok.iter() {
            w.reset_lane(l);
        }
        ok
    }
}

impl Stm for LockStm {
    fn name(&self) -> &'static str {
        self.name
    }

    fn new_warp(&self) -> WarpTx {
        WarpTx::new(&self.cfg)
    }

    fn stats(&self) -> StatsHandle {
        StatsHandle::clone(&self.stats)
    }

    /// `TXBegin` (lines 1–5): reset lane state, snapshot the global clock,
    /// fence. All requested lanes are admitted (optimistic concurrency).
    async fn begin(&self, w: &mut WarpTx, ctx: &WarpCtx, want: LaneMask) -> LaneMask {
        w.enter_phase(ctx.now(), Phase::Init);
        for l in want.iter() {
            w.reset_lane(l);
        }
        ctx.local_access(want, 1).await; // metadata reset
        let snap = ctx.load_uniform(want, self.shared.clock).await; // line 4
        for l in want.iter() {
            w.snapshot[l] = snap;
        }
        ctx.fence(want).await; // line 5
        w.enter_phase(ctx.now(), Phase::Native);
        if want.any() {
            self.trace.emit(ctx, TxEventKind::Begin { lanes: want.count() });
        }
        want
    }

    /// `TXRead` (lines 21–35).
    async fn read(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
    ) -> LaneVals {
        w.enter_phase(ctx.now(), Phase::Buffering);
        self.trace.emit(ctx, TxEventKind::Read { lanes: mask.count() });
        let mut out = [0u32; WARP_SIZE];
        // Line 22: write-set lookup through the Bloom filter (or, in the
        // ablation, a full write-set scan — same result, higher cost).
        let mut hits = LaneMask::EMPTY;
        for l in mask.iter() {
            if let Some(v) = w.writes.lookup(l, addrs[l]) {
                out[l] = v;
                hits |= LaneMask::lane(l);
            }
        }
        let probe_cost = if self.cfg.write_set_bloom { 1 } else { 1 + w.writes.max_len() as u32 };
        ctx.local_access(mask, probe_cost).await; // filter probe
        let need = mask & !hits;
        if need.none() {
            w.enter_phase(ctx.now(), Phase::Native);
            return out;
        }

        // Line 24–25: read memory, log to the read-set.
        let vals = ctx.load(need, addrs).await;
        for l in need.iter() {
            out[l] = vals[l];
            w.reads.push(l, addrs[l], vals[l]);
        }
        self.charge_set_append(ctx, need).await;
        ctx.fence(need).await; // line 26

        // Lines 27–33: consistency check.
        w.enter_phase(ctx.now(), Phase::Consistency);
        let lock_addrs =
            lane_addrs(need, |l| self.shared.lock_addr(self.shared.lock_index(addrs[l])));
        let mut words = ctx.load(need, &lock_addrs).await; // line 28
        loop {
            // Lines 27–29: wait for committing writers to release.
            let locked = need.filter(|l| VersionLock(words[l]).is_locked());
            if locked.none() {
                break;
            }
            let re = ctx.load(locked, &lock_addrs).await;
            for l in locked.iter() {
                words[l] = re[l];
            }
        }
        let stale = need
            .filter(|l| VersionLock(words[l]).version() > w.snapshot[l] && w.opaque.contains(l));
        let mut rv_failed = 0u32;
        if stale.any() {
            match self.validation {
                Validation::Tbv => {
                    // No value fallback: stale snapshot means abort.
                    let mut st = self.stats.borrow_mut();
                    for l in stale.iter() {
                        w.mark_inconsistent(l);
                        st.record_abort(AbortCause::ReadValidation);
                    }
                    if let Some(rec) = &self.recorder {
                        rec.borrow_mut().aborts += stale.count() as u64;
                    }
                    rv_failed = stale.count();
                }
                Validation::Hv => {
                    // Lines 31–33: hierarchical fallback to VBV.
                    let versions = lane_vals(stale, |l| VersionLock(words[l]).version());
                    let failed = post_validation(&self.shared, w, ctx, stale, &versions).await;
                    let mut st = self.stats.borrow_mut();
                    st.false_conflicts_filtered += (stale & !failed).count() as u64;
                    for l in failed.iter() {
                        w.mark_inconsistent(l);
                        st.record_abort(AbortCause::ReadValidation);
                    }
                    if let Some(rec) = &self.recorder {
                        rec.borrow_mut().aborts += failed.count() as u64;
                    }
                    rv_failed = failed.count();
                }
            }
        }
        if rv_failed > 0 {
            self.trace.emit(
                ctx,
                TxEventKind::Abort { cause: AbortCause::ReadValidation, lanes: rv_failed },
            );
        }
        self.trace.emit(ctx, TxEventKind::Validate { checked: need.count(), failed: rv_failed });

        // Line 34: record the lock for commit-time acquisition (skipped in
        // the write-only-locking ablation, which validates reads unlocked).
        w.enter_phase(ctx.now(), Phase::Buffering);
        if self.cfg.lock_read_set {
            let mut max_cmp = 0;
            for l in need.iter() {
                let idx = self.shared.lock_index(addrs[l]);
                max_cmp = max_cmp.max(w.locklog[l].insert(idx, true, false));
            }
            ctx.local_access(need, 1 + max_cmp).await;
        }
        w.enter_phase(ctx.now(), Phase::Native);
        out
    }

    /// `TXWrite` (lines 36–38): buffer the write, record the lock.
    async fn write(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
        vals: &LaneVals,
    ) {
        w.enter_phase(ctx.now(), Phase::Buffering);
        self.trace.emit(ctx, TxEventKind::Write { lanes: mask.count() });
        let mut max_cmp = 0;
        for l in mask.iter() {
            w.writes.insert(l, addrs[l], vals[l]);
            let idx = self.shared.lock_index(addrs[l]);
            max_cmp = max_cmp.max(w.locklog[l].insert(idx, false, true));
        }
        self.charge_set_append(ctx, mask).await;
        ctx.local_access(mask, 1 + max_cmp).await;
        w.enter_phase(ctx.now(), Phase::Native);
    }

    /// `TXCommit` (lines 67–85).
    async fn commit(&self, w: &mut WarpTx, ctx: &WarpCtx, mask: LaneMask) -> LaneMask {
        let mut committed = LaneMask::EMPTY;

        // Lanes that observed an inconsistent view abort outright (their
        // abort was already recorded at read time).
        let doomed = mask & !w.opaque;
        for l in doomed.iter() {
            w.reset_lane(l);
        }
        let mut active = mask & !doomed;

        // Lines 68–69: read-only transactions linearise at their last read.
        let ro = active.filter(|l| w.is_read_only(l));
        if ro.any() {
            let mut st = self.stats.borrow_mut();
            st.commits += ro.count() as u64;
            st.read_only_commits += ro.count() as u64;
            for l in ro.iter() {
                st.reads_committed += w.reads.len(l) as u64;
            }
            drop(st);
            if let Some(rec) = &self.recorder {
                let mut h = rec.borrow_mut();
                for l in ro.iter() {
                    h.record(CommittedTx {
                        tid: ctx.id().thread_id(l),
                        version: None,
                        snapshot: w.snapshot[l],
                        reads: w
                            .reads
                            .iter_lane(l)
                            .map(|e| Access { addr: e.addr, val: e.val })
                            .collect(),
                        writes: Vec::new(),
                    });
                }
            }
            for l in ro.iter() {
                w.reset_lane(l);
            }
            committed |= ro;
            active &= !ro;
        }

        // Optional line 71: shed doomed transactions before locking.
        if self.cfg.pre_commit_vbv && active.any() {
            w.enter_phase(ctx.now(), Phase::Commit);
            let failed = vbv(w, ctx, active).await;
            if failed.any() {
                let mut st = self.stats.borrow_mut();
                for _ in 0..failed.count() {
                    st.record_abort(AbortCause::PreVbv);
                }
                drop(st);
                self.trace.emit(
                    ctx,
                    TxEventKind::Abort { cause: AbortCause::PreVbv, lanes: failed.count() },
                );
                if let Some(rec) = &self.recorder {
                    rec.borrow_mut().aborts += failed.count() as u64;
                }
                for l in failed.iter() {
                    w.reset_lane(l);
                }
                active &= !failed;
            }
        }

        // unsorted_locks mutant: bypass both deadlock-free protocols.
        if self.mutation.unsorted_locks && active.any() {
            w.enter_phase(ctx.now(), Phase::Locking);
            self.acquire_unsorted_blocking(w, ctx, active).await;
            committed |= self.commit_locked(w, ctx, active).await;
            active = LaneMask::EMPTY;
        }

        match self.locking {
            Locking::Sorted => {
                // Lines 70–74: winners proceed; losers retry after the
                // warp's winners finish committing.
                while active.any() {
                    w.enter_phase(ctx.now(), Phase::Locking);
                    let (winners, losers) = self.acquire_sorted(w, ctx, active).await;
                    if winners.any() {
                        committed |= self.commit_locked(w, ctx, winners).await;
                    } else {
                        // All contended locks are held by other warps;
                        // re-poll shortly (they are guaranteed to progress
                        // thanks to the global lock order).
                        ctx.idle(50).await;
                    }
                    active = losers;
                }
            }
            Locking::Backoff => {
                // Step 1: all lanes try in parallel.
                w.enter_phase(ctx.now(), Phase::Locking);
                let (winners, losers) = self.acquire_sorted(w, ctx, active).await;
                if winners.any() {
                    committed |= self.commit_locked(w, ctx, winners).await;
                }
                // Step 2: failed lanes lock one at a time while the rest
                // of the warp waits — the serial bottleneck the paper
                // describes.
                for l in losers.iter() {
                    w.enter_phase(ctx.now(), Phase::Locking);
                    self.acquire_blocking_one(w, ctx, l).await;
                    committed |= self.commit_locked(w, ctx, LaneMask::lane(l)).await;
                }
            }
        }

        w.enter_phase(ctx.now(), Phase::Native);
        let resolved_aborts = (mask & !committed).count();
        {
            let mut st = self.stats.borrow_mut();
            let breakdown = &mut st.breakdown;
            w.flush_attempt(breakdown, committed.count(), resolved_aborts);
        }
        self.trace.emit(
            ctx,
            TxEventKind::Commit { committed: committed.count(), aborted: resolved_aborts },
        );
        if committed.any() {
            // Tell the simulator's progress monitor a transaction landed,
            // so contention shows up as livelock/budget pressure rather
            // than a false deadlock diagnosis.
            ctx.mark_progress();
        }
        committed
    }
}
