//! STM-EGPGV: a re-implementation of the blocking GPU STM of Cederman,
//! Tsigas and Chaudhry (EGPGV 2010), the prior-art comparison point.
//!
//! Its defining limitation is *per-thread-block transactions*: only one
//! transaction runs per thread block at a time, so transaction concurrency
//! is bounded by the number of blocks rather than threads — "limited
//! concurrency" in the paper's words. Between blocks it is a blocking
//! two-phase-locking STM: stripes are locked at encounter time; finding a
//! stripe busy aborts the transaction, which backs off and retries
//! (backoff between blocks works because blocks are not in lockstep).
//!
//! The original targets a fixed, small number of thread blocks; launches
//! beyond [`EgpgvStm::MAX_BLOCKS`] are unsupported (the paper's Figure 3
//! reports it "crashes" as thread counts scale).

use crate::api::Stm;
use crate::config::StmConfig;
use crate::history::{Access, CommittedTx, Recorder};
use crate::shared::StmShared;
use crate::stats::{stats_handle, AbortCause, Phase, StatsHandle};
use crate::trace::{TxEventKind, TxTrace, TxTraceSink};
use crate::version_lock::VersionLock;
use crate::warptx::WarpTx;
use gpu_sim::{
    Addr, AtomicOp, LaneAddrs, LaneMask, LaneVals, LaunchConfig, Sim, SimError, WarpCtx, WARP_SIZE,
};

/// The per-thread-block blocking STM.
#[derive(Clone)]
pub struct EgpgvStm {
    shared: StmShared,
    cfg: StmConfig,
    /// One lock word per thread block, serialising transactions within it.
    block_locks: Addr,
    max_blocks: u32,
    stats: StatsHandle,
    recorder: Option<Recorder>,
    trace: TxTrace,
}

impl std::fmt::Debug for EgpgvStm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EgpgvStm").field("max_blocks", &self.max_blocks).finish_non_exhaustive()
    }
}

impl EgpgvStm {
    /// Fixed metadata capacity of the original system: at most this many
    /// thread blocks (and hence concurrent transactions).
    pub const MAX_BLOCKS: u32 = 64;

    /// Allocates per-block metadata.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] when the device is full.
    pub fn init(sim: &mut Sim, shared: StmShared, cfg: StmConfig) -> Result<Self, SimError> {
        let block_locks = sim.alloc(Self::MAX_BLOCKS)?;
        Ok(EgpgvStm {
            shared,
            cfg,
            block_locks,
            max_blocks: Self::MAX_BLOCKS,
            stats: stats_handle(),
            recorder: None,
            trace: TxTrace::off(),
        })
    }

    /// Attaches a history recorder.
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Attaches a transaction-lifecycle trace sink (pure observation; see
    /// [`crate::trace`]).
    pub fn with_trace(mut self, sink: TxTraceSink) -> Self {
        self.trace = TxTrace::to(sink);
        self
    }

    /// Whether this launch fits the variant's per-block metadata — the
    /// harness reports unsupported configurations as the paper does
    /// (EGPGV "crashes" in Figure 3 as thread counts grow).
    pub fn supports(&self, grid: LaunchConfig) -> bool {
        grid.blocks <= self.max_blocks
    }

    fn block_lock(&self, ctx: &WarpCtx) -> Addr {
        self.block_locks.offset(ctx.id().block % self.max_blocks)
    }

    /// Aborts `lane`: releases its stripe locks, marks it inconsistent and
    /// counts a busy abort. The block lock stays held until `commit`.
    async fn abort_busy(&self, w: &mut WarpTx, ctx: &WarpCtx, lane: usize) {
        let m = LaneMask::lane(lane);
        // Release in sorted order (the log happens to be sorted; order is
        // irrelevant for release).
        w.acquired[lane] = w.locklog[lane].len();
        let max = w.acquired[lane];
        for k in 0..max {
            let e = w.locklog[lane].nth_sorted(k).expect("lock-log cursor in range");
            ctx.atomic_rmw(
                m,
                AtomicOp::Add,
                &{
                    let mut a = [Addr::NULL; WARP_SIZE];
                    a[lane] = self.shared.lock_addr(e.lock);
                    a
                },
                &[u32::MAX; WARP_SIZE],
            )
            .await;
        }
        w.acquired[lane] = 0;
        w.mark_inconsistent(lane);
        self.stats.borrow_mut().record_abort(AbortCause::LockBusy);
        self.trace.emit(ctx, TxEventKind::Abort { cause: AbortCause::LockBusy, lanes: 1 });
        if let Some(rec) = &self.recorder {
            rec.borrow_mut().aborts += 1;
        }
        // Inter-block backoff (no lockstep across blocks).
        let base = 128u64;
        let jitter = (ctx.id().thread_id(lane) as u64).wrapping_mul(40503) % base;
        ctx.idle(base + jitter).await;
    }

    /// Encounter-time exclusive stripe lock for `lane`; returns false and
    /// aborts the lane if the stripe is held by another transaction.
    async fn lock_stripe(&self, w: &mut WarpTx, ctx: &WarpCtx, lane: usize, addr: Addr) -> bool {
        let idx = self.shared.lock_index(addr);
        if w.locklog[lane].get(idx).is_some() {
            return true; // already ours
        }
        let m = LaneMask::lane(lane);
        let mut laddrs = [Addr::NULL; WARP_SIZE];
        laddrs[lane] = self.shared.lock_addr(idx);
        let old = ctx.atomic_rmw(m, AtomicOp::Or, &laddrs, &[1u32; WARP_SIZE]).await;
        if VersionLock(old[lane]).is_locked() {
            self.trace.emit(ctx, TxEventKind::Conflict { stripe: idx });
            self.abort_busy(w, ctx, lane).await;
            return false;
        }
        w.locklog[lane].insert(idx, true, false);
        true
    }
}

impl Stm for EgpgvStm {
    fn name(&self) -> &'static str {
        "STM-EGPGV"
    }

    fn new_warp(&self) -> WarpTx {
        WarpTx::new(&self.cfg)
    }

    fn stats(&self) -> StatsHandle {
        StatsHandle::clone(&self.stats)
    }

    /// Admits at most one lane of the whole thread block: the block's
    /// single transaction slot.
    async fn begin(&self, w: &mut WarpTx, ctx: &WarpCtx, want: LaneMask) -> LaneMask {
        let Some(leader) = want.leader() else { return LaneMask::EMPTY };
        w.enter_phase(ctx.now(), Phase::Init);
        let old = ctx.atomic_cas_one(leader, self.block_lock(ctx), 0, 1).await;
        if old != 0 {
            self.trace.emit(ctx, TxEventKind::Lock { lanes: 1, busy: 1 });
            let base = (w.backoff.max(64) * 2).min(2048);
            w.backoff = base;
            let jitter = (ctx.id().thread_id(leader) as u64).wrapping_mul(2654435761) % base;
            ctx.idle(base + jitter).await;
            w.enter_phase(ctx.now(), Phase::Native);
            return LaneMask::EMPTY;
        }
        w.backoff = 0;
        w.reset_lane(leader);
        w.enter_phase(ctx.now(), Phase::Native);
        self.trace.emit(ctx, TxEventKind::Lock { lanes: 1, busy: 0 });
        self.trace.emit(ctx, TxEventKind::Begin { lanes: 1 });
        LaneMask::lane(leader)
    }

    async fn read(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
    ) -> LaneVals {
        self.trace.emit(ctx, TxEventKind::Read { lanes: mask.count() });
        let mut out = [0u32; WARP_SIZE];
        for l in mask.iter() {
            if !w.opaque.contains(l) {
                continue; // already aborted this attempt
            }
            w.enter_phase(ctx.now(), Phase::Buffering);
            if let Some(v) = w.writes.lookup(l, addrs[l]) {
                out[l] = v;
                continue;
            }
            w.enter_phase(ctx.now(), Phase::Locking);
            if !self.lock_stripe(w, ctx, l, addrs[l]).await {
                continue;
            }
            w.enter_phase(ctx.now(), Phase::Buffering);
            let v = ctx.load_one(l, addrs[l]).await;
            out[l] = v;
            w.reads.push(l, addrs[l], v);
        }
        ctx.local_access(mask, 1).await;
        w.enter_phase(ctx.now(), Phase::Native);
        out
    }

    async fn write(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
        vals: &LaneVals,
    ) {
        self.trace.emit(ctx, TxEventKind::Write { lanes: mask.count() });
        for l in mask.iter() {
            if !w.opaque.contains(l) {
                continue;
            }
            w.enter_phase(ctx.now(), Phase::Locking);
            if !self.lock_stripe(w, ctx, l, addrs[l]).await {
                continue;
            }
            w.enter_phase(ctx.now(), Phase::Buffering);
            w.writes.insert(l, addrs[l], vals[l]);
            if let Some(mut e) = w.locklog[l].get(self.shared.lock_index(addrs[l])) {
                e.write = true;
                w.locklog[l].insert(e.lock, e.read, true);
            }
        }
        ctx.local_access(mask, 1).await;
        w.enter_phase(ctx.now(), Phase::Native);
    }

    async fn commit(&self, w: &mut WarpTx, ctx: &WarpCtx, mask: LaneMask) -> LaneMask {
        let Some(l) = mask.leader() else { return LaneMask::EMPTY };
        let m = LaneMask::lane(l);
        let mut committed = LaneMask::EMPTY;

        if w.opaque.contains(l) {
            w.enter_phase(ctx.now(), Phase::Commit);
            // Two-phase locking: all accessed stripes are exclusively held,
            // so publication needs no validation.
            for k in 0..w.writes.len(l) {
                let e = w.writes.get(l, k);
                ctx.store_one(l, e.addr, e.val).await;
            }
            ctx.fence(m).await;
            let clock_addrs = [self.shared.clock; WARP_SIZE];
            let old = ctx.atomic_rmw(m, AtomicOp::Add, &clock_addrs, &[1u32; WARP_SIZE]).await;
            let version = old[l] + 1;
            // Release stripes: written ones publish the new version.
            for k in 0..w.locklog[l].len() {
                let e = w.locklog[l].nth_sorted(k).expect("lock-log cursor in range");
                if e.write {
                    ctx.store_one(
                        l,
                        self.shared.lock_addr(e.lock),
                        VersionLock::unlocked(version).bits(),
                    )
                    .await;
                } else {
                    let mut a = [Addr::NULL; WARP_SIZE];
                    a[l] = self.shared.lock_addr(e.lock);
                    ctx.atomic_rmw(m, AtomicOp::Add, &a, &[u32::MAX; WARP_SIZE]).await;
                }
            }
            {
                let mut st = self.stats.borrow_mut();
                st.commits += 1;
                st.reads_committed += w.reads.len(l) as u64;
                st.writes_committed += w.writes.len(l) as u64;
                if w.is_read_only(l) {
                    st.read_only_commits += 1;
                }
            }
            if let Some(rec) = &self.recorder {
                rec.borrow_mut().record(CommittedTx {
                    tid: ctx.id().thread_id(l),
                    version: Some(version),
                    snapshot: version.saturating_sub(1),
                    reads: w
                        .reads
                        .iter_lane(l)
                        .map(|e| Access { addr: e.addr, val: e.val })
                        .collect(),
                    writes: w
                        .writes
                        .iter_lane(l)
                        .map(|e| Access { addr: e.addr, val: e.val })
                        .collect(),
                });
            }
            committed = m;
        }
        // Release the block's transaction slot either way.
        ctx.store_one(l, self.block_lock(ctx), 0).await;
        w.reset_lane(l);
        w.enter_phase(ctx.now(), Phase::Native);
        {
            let mut st = self.stats.borrow_mut();
            w.flush_attempt(&mut st.breakdown, committed.count(), m.count() - committed.count());
        }
        self.trace.emit(
            ctx,
            TxEventKind::Commit {
                committed: committed.count(),
                aborted: m.count() - committed.count(),
            },
        );
        if committed.any() {
            ctx.mark_progress();
        }
        committed
    }
}
