//! GPU-STM runtime configuration.

/// Configuration shared by all lock-based STM variants.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StmConfig {
    /// Number of global version locks (the paper's default is 2^20 = 1M).
    /// Must be a power of two.
    pub n_locks: u32,
    /// Run the optional value-based validation *before* acquiring commit
    /// locks (Algorithm 3 line 71) to shed doomed transactions early and
    /// reduce lock contention.
    pub pre_commit_vbv: bool,
    /// Organise read-/write-sets in the coalesced warp-merged layout
    /// (Section 3.1). Disabling models a naive per-thread layout and
    /// charges one local transaction per active lane instead of one per
    /// warp — used by the ablation benches.
    pub coalesced_sets: bool,
    /// Buckets in the order-preserving lock-log hash table. `1` degrades
    /// to the flat O(n²) sorted list the paper describes as the
    /// unoptimised baseline.
    pub locklog_buckets: u32,
    /// Lock *read* stripes at commit as well as written ones. GPU-STM
    /// requires this under lockstep execution (Section 3.2.2's T1/T2
    /// starvation example); disabling reproduces the CPU-STM convention
    /// (TL2-style write-only locking) and is used by the ablation benches
    /// and the starvation test.
    pub lock_read_set: bool,
    /// Use the per-lane Bloom filter for the read barrier's write-set
    /// lookup (Algorithm 3 line 22). Disabling falls back to a full
    /// write-set scan, charged accordingly.
    pub write_set_bloom: bool,
    /// Maximum read-set addresses one parking lane may register in the
    /// waker registry (`gpu_stm::park`). A `retry()` whose validated read
    /// set exceeds this aborts the park and falls back to abort-respin
    /// rather than flooding the registry. Must be non-zero.
    pub max_parked_per_warp: u32,
    /// Cycles a parked transaction waits before waking itself to revalidate
    /// (`u64::MAX` = trust the registry and wait forever). A finite budget
    /// bounds the damage of a lost wakeup at the cost of spurious wakes.
    pub park_budget_cycles: u64,
    /// Fault injection: per-mille probability (0–1000) that a park is given
    /// an artificially short budget, forcing a spurious wake that must
    /// revalidate and re-park. Exercises the waker loop; 0 disables.
    pub spurious_wake_rate: u32,
}

impl StmConfig {
    /// Paper defaults, scaled: 2^20 global version locks, hash-table
    /// lock-log, coalesced sets, no pre-commit validation.
    ///
    /// # Panics
    ///
    /// Panics if `n_locks` is not a power of two; use [`StmConfig::try_new`]
    /// for a structured error instead.
    pub fn new(n_locks: u32) -> Self {
        StmConfig::try_new(n_locks).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor for user-supplied lock-table sizes.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint if `n_locks` is
    /// not a power of two.
    pub fn try_new(n_locks: u32) -> Result<Self, String> {
        let cfg = StmConfig {
            n_locks,
            pre_commit_vbv: false,
            coalesced_sets: true,
            // Bucket count cannot exceed the lock-table size; tiny test
            // tables get a correspondingly smaller (still pow2) default.
            locklog_buckets: 16.min(n_locks.max(1)),
            lock_read_set: true,
            write_set_bloom: true,
            max_parked_per_warp: 32,
            park_budget_cycles: u64::MAX,
            spurious_wake_rate: 0,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks the cross-field invariants of a (possibly hand-assembled)
    /// configuration. Called by [`StmShared::init`](crate::StmShared::init)
    /// so that a bad config surfaces as a structured launch error instead
    /// of a panic deep inside kernel state construction.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.n_locks.is_power_of_two() {
            return Err(format!("n_locks must be a power of two, got {}", self.n_locks));
        }
        if !self.locklog_buckets.is_power_of_two() {
            return Err(format!(
                "locklog_buckets must be a power of two, got {}",
                self.locklog_buckets
            ));
        }
        if self.locklog_buckets > self.n_locks {
            return Err(format!(
                "locklog_buckets ({}) must not exceed n_locks ({})",
                self.locklog_buckets, self.n_locks
            ));
        }
        if self.max_parked_per_warp == 0 {
            return Err("max_parked_per_warp must be non-zero".to_string());
        }
        if self.park_budget_cycles == 0 {
            return Err(
                "park_budget_cycles must be non-zero (use u64::MAX to wait forever)".to_string()
            );
        }
        if self.spurious_wake_rate > 1000 {
            return Err(format!(
                "spurious_wake_rate is per-mille and must be at most 1000, got {}",
                self.spurious_wake_rate
            ));
        }
        Ok(())
    }
}

impl Default for StmConfig {
    fn default() -> Self {
        StmConfig::new(1 << 20)
    }
}

/// Which conflict-detection strategy a [`LockStm`](crate::variants::LockStm)
/// uses (Section 3.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Validation {
    /// Timestamp-based validation only (TL2-style): a stale snapshot
    /// aborts the transaction, so stripe aliasing causes false conflicts.
    Tbv,
    /// Hierarchical validation: timestamps first, falling back to
    /// value-based validation to filter false conflicts.
    Hv,
}

/// How commit-time locks are acquired without livelocking under lockstep
/// execution.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Locking {
    /// Encounter-time lock-sorting: all transactions acquire locks in
    /// ascending global lock-id order (Section 3.1).
    Sorted,
    /// GPU-specific backoff: warp lanes first try in parallel in encounter
    /// order; lanes that fail retry one at a time while the rest of the
    /// warp waits (Section 4.2's STM-HV-Backoff).
    Backoff,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = StmConfig::default();
        assert_eq!(c.n_locks, 1 << 20);
        assert!(c.coalesced_sets);
        assert!(!c.pre_commit_vbv);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_locks_rejected() {
        let _ = StmConfig::new(1000);
    }

    #[test]
    fn try_new_reports_instead_of_panicking() {
        assert!(StmConfig::try_new(1 << 12).is_ok());
        let err = StmConfig::try_new(1000).unwrap_err();
        assert!(err.contains("power of two"), "{err}");
    }

    #[test]
    fn validate_catches_hand_assembled_invariant_breaks() {
        let good = StmConfig::new(1 << 8);
        assert!(good.validate().is_ok());

        let mut bad = good;
        bad.locklog_buckets = 3;
        assert!(bad.validate().unwrap_err().contains("locklog_buckets"));

        let mut bad = good;
        bad.locklog_buckets = good.n_locks * 2;
        assert!(bad.validate().unwrap_err().contains("exceed"));
    }

    #[test]
    fn park_knob_defaults() {
        let c = StmConfig::default();
        assert_eq!(c.max_parked_per_warp, 32);
        assert_eq!(c.park_budget_cycles, u64::MAX);
        assert_eq!(c.spurious_wake_rate, 0);
    }

    #[test]
    fn validate_catches_bad_park_knobs() {
        let good = StmConfig::new(1 << 8);

        let mut bad = good;
        bad.max_parked_per_warp = 0;
        assert!(bad.validate().unwrap_err().contains("max_parked_per_warp"));

        let mut bad = good;
        bad.park_budget_cycles = 0;
        assert!(bad.validate().unwrap_err().contains("park_budget_cycles"));

        let mut bad = good;
        bad.spurious_wake_rate = 1001;
        assert!(bad.validate().unwrap_err().contains("per-mille"));
        bad.spurious_wake_rate = 1000;
        assert!(bad.validate().is_ok(), "1000 per-mille (always) is a legal rate");
    }
}
