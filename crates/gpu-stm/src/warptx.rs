//! Per-warp transaction state: the thread-local metadata of Algorithm 2,
//! merged warp-wide (coalesced organisation) with one logical transaction
//! per lane.

use crate::config::StmConfig;
use crate::locklog::LockLog;
use crate::sets::{WarpLog, WriteSet};
use crate::stats::{Breakdown, Phase, NUM_PHASES};
use gpu_sim::{LaneMask, WARP_SIZE};

/// The warp's transactional descriptor — the object `STM_NEW_WARP()`
/// returns in the paper's Figure 1 example.
///
/// Holds, per lane: the read-set, write-set (with Bloom filter), sorted
/// lock-log, clock snapshot, opacity flag and TBV pass flag; plus warp-wide
/// phase-timing scratch state.
#[derive(Debug)]
pub struct WarpTx {
    /// Read-set: (address, value) pairs per lane, coalesced layout.
    pub reads: WarpLog,
    /// Write-set with per-lane Bloom filters.
    pub writes: WriteSet,
    /// Per-lane encounter-time sorted lock-logs.
    pub locklog: Vec<LockLog>,
    /// Per-lane global-clock snapshot (Algorithm 3 line 4).
    pub snapshot: [u32; WARP_SIZE],
    /// Per-lane opacity flags: cleared when a lane observes an
    /// inconsistent view and must abort (Algorithm 3 line 33).
    pub opaque: LaneMask,
    /// Per-lane commit-time TBV outcome (Algorithm 3 line 51).
    pub pass_tbv: [bool; WARP_SIZE],
    /// Per-lane count of commit locks currently held (for release paths).
    pub acquired: [usize; WARP_SIZE],
    /// Warp-local backoff state for retry jitter.
    pub backoff: u64,
    /// Per-lane count of *consecutive* aborted attempts of the current
    /// logical transaction. Deliberately **not** cleared by
    /// [`reset_lane`](Self::reset_lane) — an abort resets the lane for
    /// its retry, and the streak must survive that. The
    /// [`Robust`](crate::Robust) wrapper maintains it (zeroing on commit)
    /// and escalates starving lanes to the serialized fallback path.
    pub consec_aborts: [u32; WARP_SIZE],
    /// Lanes that called `retry()` this attempt: instead of committing,
    /// they want to block until an address of their read-set is
    /// overwritten (see [`Blocking`](crate::park::Blocking)). Cleared by
    /// [`reset_lane`](Self::reset_lane) and consumed by
    /// `commit_or_park` / `or_else`.
    pub retrying: LaneMask,

    cur_phase: Phase,
    phase_start: u64,
    attempt: [f64; NUM_PHASES],
}

impl WarpTx {
    /// Creates a descriptor for one warp under `cfg`.
    pub fn new(cfg: &StmConfig) -> Self {
        WarpTx {
            reads: WarpLog::new(),
            writes: WriteSet::new(),
            locklog: (0..WARP_SIZE)
                .map(|_| LockLog::new(cfg.locklog_buckets, cfg.n_locks))
                .collect(),
            snapshot: [0; WARP_SIZE],
            opaque: LaneMask::FULL,
            pass_tbv: [true; WARP_SIZE],
            acquired: [0; WARP_SIZE],
            backoff: 0,
            consec_aborts: [0; WARP_SIZE],
            retrying: LaneMask::EMPTY,
            cur_phase: Phase::Native,
            phase_start: 0,
            attempt: [0.0; NUM_PHASES],
        }
    }

    /// Resets `lane` for a fresh transaction (the `TXBegin` line 2–3
    /// state initialisation).
    pub fn reset_lane(&mut self, lane: usize) {
        self.reads.clear_lane(lane);
        self.writes.clear_lane(lane);
        self.locklog[lane].clear();
        self.opaque |= LaneMask::lane(lane);
        self.pass_tbv[lane] = true;
        self.acquired[lane] = 0;
        self.retrying = self.retrying.without(lane);
    }

    /// Marks `lane` inconsistent: it must abort (its reads no longer form
    /// a consistent snapshot).
    pub fn mark_inconsistent(&mut self, lane: usize) {
        self.opaque = self.opaque.without(lane);
    }

    /// Whether `lane` buffered no writes (read-only transaction).
    pub fn is_read_only(&self, lane: usize) -> bool {
        self.writes.is_empty(lane)
    }

    // ---- phase accounting (Figure 5 breakdown) ----

    /// Switches the warp's current phase, attributing the elapsed span to
    /// the previous phase. `now` is the current simulated cycle.
    pub fn enter_phase(&mut self, now: u64, phase: Phase) {
        let span = now.saturating_sub(self.phase_start) as f64;
        self.attempt[self.cur_phase as usize] += span;
        self.cur_phase = phase;
        self.phase_start = now;
    }

    /// Flushes the attempt buffer into `breakdown` at the end of a commit
    /// call. Native and `Parked` time are attributed directly — parked
    /// cycles are *waiting*, never wasted work, so they must not land in
    /// the `Aborted` bucket. Transactional time is split between committed
    /// phases and the `Aborted` bucket in proportion to how many lanes
    /// committed vs aborted.
    pub fn flush_attempt(&mut self, breakdown: &mut Breakdown, committed: u32, aborted: u32) {
        let before = breakdown.total();
        let native = std::mem::replace(&mut self.attempt[Phase::Native as usize], 0.0);
        breakdown.add(Phase::Native, native);
        let parked = std::mem::replace(&mut self.attempt[Phase::Parked as usize], 0.0);
        breakdown.add(Phase::Parked, parked);
        let total_lanes = committed + aborted;
        if total_lanes == 0 {
            // Nothing resolved; keep accumulating for the next flush.
            Self::check_conservation(breakdown, before, native + parked);
            return;
        }
        let cf = committed as f64 / total_lanes as f64;
        let af = aborted as f64 / total_lanes as f64;
        let mut tx_total = 0.0;
        for (i, slot) in self.attempt.iter_mut().enumerate() {
            if i == Phase::Native as usize || i == Phase::Parked as usize {
                continue;
            }
            let v = std::mem::replace(slot, 0.0);
            tx_total += v;
            breakdown.add_index(i, v * cf);
        }
        breakdown.add(Phase::Aborted, tx_total * af);
        Self::check_conservation(breakdown, before, native + parked + tx_total);
    }

    /// Debug-build cross-check: a flush must grow the breakdown's total by
    /// exactly the cycles it drained from the attempt buffer — the
    /// proportional committed/aborted split redistributes time between
    /// phases but must never create or lose any (silent phase-attribution
    /// drift would corrupt the Figure 5 reproduction).
    #[inline]
    fn check_conservation(breakdown: &Breakdown, before: f64, drained: f64) {
        let _ = (breakdown, before, drained);
        debug_assert!(
            (breakdown.total() - before - drained).abs() <= 1e-6 * drained.abs().max(1.0),
            "breakdown drift: total went {before} -> {} but {drained} cycles were drained",
            breakdown.total()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Addr;

    fn cfg() -> StmConfig {
        StmConfig::new(1 << 10)
    }

    #[test]
    fn reset_clears_lane_state() {
        let mut w = WarpTx::new(&cfg());
        w.reads.push(3, Addr(1), 2);
        w.writes.insert(3, Addr(1), 5);
        w.locklog[3].insert(1, true, true);
        w.mark_inconsistent(3);
        w.pass_tbv[3] = false;
        w.acquired[3] = 2;
        w.reset_lane(3);
        assert!(w.reads.is_empty(3));
        assert!(w.writes.is_empty(3));
        assert!(w.locklog[3].is_empty());
        assert!(w.opaque.contains(3));
        assert!(w.pass_tbv[3]);
        assert_eq!(w.acquired[3], 0);
    }

    #[test]
    fn read_only_until_first_write() {
        let mut w = WarpTx::new(&cfg());
        assert!(w.is_read_only(0));
        w.writes.insert(0, Addr(9), 1);
        assert!(!w.is_read_only(0));
    }

    #[test]
    fn phase_flush_all_committed() {
        let mut w = WarpTx::new(&cfg());
        let mut b = Breakdown::new();
        w.enter_phase(0, Phase::Init);
        w.enter_phase(10, Phase::Buffering); // 10 cycles of Init
        w.enter_phase(25, Phase::Native); // 15 cycles of Buffering
        w.flush_attempt(&mut b, 32, 0);
        assert_eq!(b.get(Phase::Init), 10.0);
        assert_eq!(b.get(Phase::Buffering), 15.0);
        assert_eq!(b.get(Phase::Aborted), 0.0);
    }

    #[test]
    fn phase_flush_split_between_commit_and_abort() {
        let mut w = WarpTx::new(&cfg());
        let mut b = Breakdown::new();
        w.enter_phase(0, Phase::Commit);
        w.enter_phase(100, Phase::Native);
        w.flush_attempt(&mut b, 1, 3);
        assert_eq!(b.get(Phase::Commit), 25.0);
        assert_eq!(b.get(Phase::Aborted), 75.0);
    }

    #[test]
    fn native_time_not_charged_to_aborts() {
        let mut w = WarpTx::new(&cfg());
        let mut b = Breakdown::new();
        // 50 cycles of native work, then an aborted attempt of 10 cycles.
        w.enter_phase(50, Phase::Init); // Native phase ran 0..50
        w.enter_phase(60, Phase::Native);
        w.flush_attempt(&mut b, 0, 32);
        assert_eq!(b.get(Phase::Native), 50.0);
        assert_eq!(b.get(Phase::Aborted), 10.0);
    }

    #[test]
    fn zero_resolution_keeps_tx_time_buffered() {
        let mut w = WarpTx::new(&cfg());
        let mut b = Breakdown::new();
        w.enter_phase(0, Phase::Locking);
        w.enter_phase(30, Phase::Native);
        w.flush_attempt(&mut b, 0, 0);
        assert_eq!(b.total(), 0.0);
        // A later successful flush drains the buffered locking time.
        w.enter_phase(40, Phase::Commit);
        w.enter_phase(50, Phase::Native);
        w.flush_attempt(&mut b, 32, 0);
        assert_eq!(b.get(Phase::Locking), 30.0);
        assert_eq!(b.get(Phase::Commit), 10.0);
    }

    #[test]
    fn flush_conserves_attributed_cycles() {
        // Phase cycles drained from the attempt buffer must land in the
        // breakdown exactly, whatever the committed/aborted split.
        for (committed, aborted) in [(32, 0), (0, 32), (1, 3), (7, 11), (0, 0)] {
            let mut w = WarpTx::new(&cfg());
            let mut b = Breakdown::new();
            w.enter_phase(5, Phase::Init); // 5 native cycles
            w.enter_phase(10, Phase::Buffering);
            w.enter_phase(40, Phase::Consistency);
            w.enter_phase(41, Phase::Locking);
            w.enter_phase(100, Phase::Commit);
            w.enter_phase(163, Phase::Native);
            w.flush_attempt(&mut b, committed, aborted);
            let expected = if committed + aborted == 0 { 5.0 } else { 163.0 };
            assert!(
                (b.total() - expected).abs() < 1e-9,
                "split {committed}/{aborted}: total {} != {expected}",
                b.total()
            );
            if committed + aborted > 0 {
                // The residue drains on the next resolving flush.
                w.flush_attempt(&mut b, 1, 0);
                assert!((b.total() - 163.0).abs() < 1e-9);
            }
        }
    }
}
