//! Transactional history recording, consumed by the `tm-check` crate's
//! opacity/serializability checker.
//!
//! When a [`Recorder`] is attached to an STM variant, every committed
//! transaction logs its full read- and write-set together with the commit
//! version it obtained from the global clock, and every abort is counted.
//! The log is totally ordered by recording time, which in the simulator's
//! single-threaded event loop is a legal linear extension of real time.

use gpu_sim::Addr;
use std::cell::RefCell;
use std::rc::Rc;

/// One read or write observed by a committed transaction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Access {
    /// Data address.
    pub addr: Addr,
    /// Value read (for reads) or published (for writes).
    pub val: u32,
}

/// A committed transaction, as recorded at its commit point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommittedTx {
    /// Global thread id that ran the transaction.
    pub tid: u32,
    /// Commit version drawn from the global clock; `None` for read-only
    /// transactions (which linearise at their snapshot instead).
    pub version: Option<u32>,
    /// Snapshot the transaction last validated against.
    pub snapshot: u32,
    /// All transactional reads (address, value seen).
    pub reads: Vec<Access>,
    /// All transactional writes (address, value published).
    pub writes: Vec<Access>,
}

impl CommittedTx {
    /// Whether the transaction published no writes.
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }
}

/// Observer invoked synchronously for every transaction recorded into a
/// [`History`], at the moment of recording (i.e. at the commit point, in
/// commit order). Used by layers that must react to commits as they
/// happen — e.g. the tm-serve engine maps committing thread ids back to
/// client requests to build a request-tagged commit log.
///
/// The hook runs while the history is mutably borrowed: it must not
/// touch the recorder it is attached to.
pub type CommitHook = Rc<dyn Fn(&CommittedTx)>;

/// A complete recorded history.
#[derive(Clone, Default)]
pub struct History {
    /// Committed transactions in recording (real-time commit) order.
    pub commits: Vec<CommittedTx>,
    /// Count of aborted attempts.
    pub aborts: u64,
    /// Optional commit observer, fired by [`History::record`].
    hook: Option<CommitHook>,
}

impl std::fmt::Debug for History {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("History")
            .field("commits", &self.commits)
            .field("aborts", &self.aborts)
            .field("hook", &self.hook.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Installs a commit observer fired for every transaction that is
    /// subsequently [`record`](History::record)ed.
    pub fn set_hook(&mut self, hook: CommitHook) {
        self.hook = Some(hook);
    }

    /// Records one committed transaction, notifying the commit hook (if
    /// any) before the transaction is appended. Every STM variant routes
    /// its commit-point recording through this method, so a hook observes
    /// the complete committed history in commit order.
    pub fn record(&mut self, tx: CommittedTx) {
        if let Some(hook) = &self.hook {
            hook(&tx);
        }
        self.commits.push(tx);
    }
}

/// Shared recording handle attached to STM variants.
pub type Recorder = Rc<RefCell<History>>;

/// Creates a fresh recorder.
pub fn recorder() -> Recorder {
    Rc::new(RefCell::new(History::new()))
}

/// Creates a fresh recorder with a commit hook pre-installed.
pub fn recorder_with_hook(hook: CommitHook) -> Recorder {
    let rec = recorder();
    rec.borrow_mut().set_hook(hook);
    rec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_inspect() {
        let rec = recorder();
        rec.borrow_mut().commits.push(CommittedTx {
            tid: 3,
            version: Some(1),
            snapshot: 0,
            reads: vec![Access { addr: Addr(5), val: 0 }],
            writes: vec![Access { addr: Addr(5), val: 9 }],
        });
        rec.borrow_mut().aborts += 2;
        let h = rec.borrow();
        assert_eq!(h.commits.len(), 1);
        assert!(!h.commits[0].is_read_only());
        assert_eq!(h.aborts, 2);
    }

    #[test]
    fn read_only_detection() {
        let tx = CommittedTx { tid: 0, version: None, snapshot: 4, reads: vec![], writes: vec![] };
        assert!(tx.is_read_only());
    }

    #[test]
    fn commit_hook_observes_recorded_txs_in_order() {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        let rec = recorder_with_hook(Rc::new(move |tx: &CommittedTx| {
            sink.borrow_mut().push((tx.tid, tx.version));
        }));
        for tid in 0..3 {
            rec.borrow_mut().record(CommittedTx {
                tid,
                version: Some(tid + 10),
                snapshot: 0,
                reads: vec![],
                writes: vec![],
            });
        }
        assert_eq!(*seen.borrow(), vec![(0, Some(10)), (1, Some(11)), (2, Some(12))]);
        assert_eq!(rec.borrow().commits.len(), 3);
    }
}
