//! Transactional history recording, consumed by the `tm-check` crate's
//! opacity/serializability checker.
//!
//! When a [`Recorder`] is attached to an STM variant, every committed
//! transaction logs its full read- and write-set together with the commit
//! version it obtained from the global clock, and every abort is counted.
//! The log is totally ordered by recording time, which in the simulator's
//! single-threaded event loop is a legal linear extension of real time.

use gpu_sim::Addr;
use std::cell::RefCell;
use std::rc::Rc;

/// One read or write observed by a committed transaction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Access {
    /// Data address.
    pub addr: Addr,
    /// Value read (for reads) or published (for writes).
    pub val: u32,
}

/// A committed transaction, as recorded at its commit point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommittedTx {
    /// Global thread id that ran the transaction.
    pub tid: u32,
    /// Commit version drawn from the global clock; `None` for read-only
    /// transactions (which linearise at their snapshot instead).
    pub version: Option<u32>,
    /// Snapshot the transaction last validated against.
    pub snapshot: u32,
    /// All transactional reads (address, value seen).
    pub reads: Vec<Access>,
    /// All transactional writes (address, value published).
    pub writes: Vec<Access>,
}

impl CommittedTx {
    /// Whether the transaction published no writes.
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }
}

/// A complete recorded history.
#[derive(Clone, Debug, Default)]
pub struct History {
    /// Committed transactions in recording (real-time commit) order.
    pub commits: Vec<CommittedTx>,
    /// Count of aborted attempts.
    pub aborts: u64,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History::default()
    }
}

/// Shared recording handle attached to STM variants.
pub type Recorder = Rc<RefCell<History>>;

/// Creates a fresh recorder.
pub fn recorder() -> Recorder {
    Rc::new(RefCell::new(History::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_inspect() {
        let rec = recorder();
        rec.borrow_mut().commits.push(CommittedTx {
            tid: 3,
            version: Some(1),
            snapshot: 0,
            reads: vec![Access { addr: Addr(5), val: 0 }],
            writes: vec![Access { addr: Addr(5), val: 9 }],
        });
        rec.borrow_mut().aborts += 2;
        let h = rec.borrow();
        assert_eq!(h.commits.len(), 1);
        assert!(!h.commits[0].is_read_only());
        assert_eq!(h.aborts, 2);
    }

    #[test]
    fn read_only_detection() {
        let tx = CommittedTx { tid: 0, version: None, snapshot: 4, reads: vec![], writes: vec![] };
        assert!(tx.is_read_only());
    }
}
