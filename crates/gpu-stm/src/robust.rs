//! Graceful degradation under contention: bounded randomized backoff,
//! starvation tracking, and an HTM-style serialized fallback path.
//!
//! GPU-STM's lock-sorting rules out livelock among transactions that
//! reach their commit point, but nothing in the base runtime bounds how
//! often one *particular* transaction loses: under a pathological access
//! pattern (or injected faults — see `gpu_sim::fault`) a lane can abort
//! indefinitely while the rest of the grid commits around it. [`Robust`]
//! wraps any [`Stm`] runtime with the standard progress ladder used by
//! hybrid/best-effort TM systems:
//!
//! 1. **Bounded backoff** — after an abort, the warp idles for a seeded,
//!    capped exponential backoff derived from the worst per-lane
//!    consecutive-abort streak, decorrelating lockstep retries.
//! 2. **Starvation tracking** — `WarpTx::consec_aborts` counts each
//!    lane's losing streak; the longest streak observed is reported in
//!    [`TxStats::max_consec_aborts`](crate::TxStats::max_consec_aborts).
//! 3. **Escalation** — once a lane's streak reaches
//!    [`RobustConfig::fallback_after`], it grabs a global fallback lock
//!    (CAS `0 -> tid+1` on a device word). While the lock is held,
//!    `begin` refuses admission to every other transaction, so the
//!    starving one runs essentially alone and must commit; committing
//!    releases the lock. This is the software analogue of an HTM
//!    fallback path and bounds per-transaction aborts: a streak can only
//!    grow past `fallback_after` while an earlier escalatee drains.
//!
//! The wrapper also consumes the inner runtime's
//! [`abort_storm`](Stm::abort_storm) signal (the [`Scheduled`]
//! scheduler's AIMD high-water indicator): during a storm backoff jumps
//! straight to its cap instead of climbing to it.
//!
//! [`Scheduled`]: crate::Scheduled

use crate::api::Stm;
use crate::stats::StatsHandle;
use crate::trace::{TxEventKind, TxTrace, TxTraceSink};
use crate::warptx::WarpTx;
use gpu_sim::{Addr, LaneAddrs, LaneMask, LaneVals, Sim, SimError, WarpCtx};
use std::cell::RefCell;
use std::rc::Rc;

/// Tuning knobs for the degradation ladder.
#[derive(Copy, Clone, Debug)]
pub struct RobustConfig {
    /// Seed for the backoff jitter stream.
    pub seed: u64,
    /// Base backoff span in cycles; doubles per consecutive abort.
    pub backoff_base: u64,
    /// Upper bound on a single backoff span.
    pub backoff_cap: u64,
    /// Consecutive aborts of one lane before it escalates to the
    /// serialized fallback path.
    pub fallback_after: u32,
}

impl Default for RobustConfig {
    fn default() -> Self {
        RobustConfig { seed: 1, backoff_base: 32, backoff_cap: 4096, fallback_after: 8 }
    }
}

impl RobustConfig {
    /// Checks the configuration for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint:
    /// a zero `backoff_base`, a cap below the base, or a zero
    /// `fallback_after` (which would escalate *every* abort and
    /// serialize the whole run).
    pub fn validate(&self) -> Result<(), String> {
        if self.backoff_base == 0 {
            return Err("backoff_base must be at least 1 cycle".into());
        }
        if self.backoff_cap < self.backoff_base {
            return Err(format!(
                "backoff_cap ({}) must be at least backoff_base ({})",
                self.backoff_cap, self.backoff_base
            ));
        }
        if self.fallback_after == 0 {
            return Err("fallback_after must be at least 1 abort".into());
        }
        Ok(())
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[derive(Debug)]
struct RobustState {
    rng: u64,
}

/// Wraps an STM runtime with bounded backoff, starvation tracking and a
/// serialized fallback commit path. Transparent to kernels: refused
/// lanes see an empty mask from `begin` and retry, exactly like a
/// contended CGL/EGPGV admission.
#[derive(Clone)]
pub struct Robust<S> {
    inner: S,
    cfg: RobustConfig,
    /// Device word: 0 = free, `tid + 1` = escalated holder.
    fallback_lock: Addr,
    state: Rc<RefCell<RobustState>>,
    trace: TxTrace,
}

impl<S: std::fmt::Debug> std::fmt::Debug for Robust<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Robust")
            .field("inner", &self.inner)
            .field("cfg", &self.cfg)
            .field("fallback_lock", &self.fallback_lock)
            .finish_non_exhaustive()
    }
}

impl<S: Stm> Robust<S> {
    /// Allocates the device fallback-lock word and wraps `inner`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] if the lock word does not fit,
    /// or [`SimError::BadLaunch`] for an inconsistent configuration
    /// (see [`RobustConfig::validate`]).
    pub fn init(sim: &mut Sim, inner: S, cfg: RobustConfig) -> Result<Self, SimError> {
        cfg.validate().map_err(SimError::BadLaunch)?;
        let fallback_lock = sim.alloc(1)?;
        Ok(Robust {
            inner,
            cfg,
            fallback_lock,
            state: Rc::new(RefCell::new(RobustState { rng: cfg.seed })),
            trace: TxTrace::off(),
        })
    }

    /// Attaches a transaction-lifecycle trace sink: the wrapper emits
    /// [`TxEventKind::Backoff`] for every abort-backoff span it charges
    /// and [`TxEventKind::Escalate`] when a starving lane wins the
    /// fallback lock. (Attach the same sink to the inner runtime for its
    /// lifecycle events.)
    pub fn with_trace(mut self, sink: TxTraceSink) -> Self {
        self.trace = TxTrace::to(sink);
        self
    }

    /// Wraps `inner` with default tuning.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] if the lock word does not fit.
    pub fn with_defaults(sim: &mut Sim, inner: S) -> Result<Self, SimError> {
        Robust::init(sim, inner, RobustConfig::default())
    }

    /// The wrapped runtime.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Device address of the fallback-lock word (for tests/diagnostics).
    pub fn fallback_lock_addr(&self) -> Addr {
        self.fallback_lock
    }

    /// Current backoff-jitter RNG state, the wrapper's only host-side
    /// mutable state; capture it in crash-recovery snapshots so replayed
    /// backoff spans match the original run cycle-for-cycle.
    pub fn rng_state(&self) -> u64 {
        self.state.borrow().rng
    }

    /// Restores the backoff-jitter RNG captured by
    /// [`rng_state`](Self::rng_state).
    pub fn restore_rng_state(&self, rng: u64) {
        self.state.borrow_mut().rng = rng;
    }

    /// Backoff span before the next retry, given the worst losing streak
    /// in the warp: capped exponential with jitter in `[span/2, span]`,
    /// jumping straight to the cap during an abort storm.
    fn backoff_span(&self, worst_streak: u32) -> u64 {
        let exp = worst_streak.min(20);
        let mut span = self.cfg.backoff_base.saturating_shl(exp).min(self.cfg.backoff_cap);
        if self.inner.abort_storm() {
            span = self.cfg.backoff_cap;
        }
        let r = splitmix64(&mut self.state.borrow_mut().rng);
        span / 2 + r % (span / 2 + 1)
    }
}

/// `u64::checked_shl` that saturates instead of wrapping (a 64-abort
/// streak must not shift the base back down to zero).
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> u64 {
        if rhs > self.leading_zeros() {
            u64::MAX
        } else {
            self << rhs
        }
    }
}

impl<S: Stm> Stm for Robust<S> {
    fn name(&self) -> &'static str {
        "Robust"
    }

    fn new_warp(&self) -> WarpTx {
        self.inner.new_warp()
    }

    fn stats(&self) -> StatsHandle {
        self.inner.stats()
    }

    async fn begin(&self, w: &mut WarpTx, ctx: &WarpCtx, want: LaneMask) -> LaneMask {
        let Some(leader) = want.leader() else {
            return self.inner.begin(w, ctx, want).await;
        };
        let holder = ctx.load_one(leader, self.fallback_lock).await;
        if holder != 0 {
            // Serialized mode: only the escalated transaction may run.
            let ours = want.filter(|l| ctx.id().thread_id(l) + 1 == holder);
            if ours.none() {
                ctx.idle(self.cfg.backoff_base.max(50)).await;
                return LaneMask::EMPTY;
            }
            return self.inner.begin(w, ctx, ours).await;
        }
        self.inner.begin(w, ctx, want).await
    }

    async fn read(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
    ) -> LaneVals {
        self.inner.read(w, ctx, mask, addrs).await
    }

    async fn write(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
        vals: &LaneVals,
    ) {
        self.inner.write(w, ctx, mask, addrs, vals).await
    }

    async fn commit(&self, w: &mut WarpTx, ctx: &WarpCtx, mask: LaneMask) -> LaneMask {
        let committed = self.inner.commit(w, ctx, mask).await;
        let aborted = mask & !committed;

        // Starvation accounting: commits end a streak, aborts extend it.
        for l in committed.iter() {
            w.consec_aborts[l] = 0;
        }
        let mut worst = 0u32;
        for l in aborted.iter() {
            w.consec_aborts[l] += 1;
            worst = worst.max(w.consec_aborts[l]);
        }
        if worst > 0 {
            let stats = self.inner.stats();
            let mut st = stats.borrow_mut();
            st.max_consec_aborts = st.max_consec_aborts.max(worst as u64);
        }

        if mask.any() {
            let leader = mask.leader().expect("non-empty mask");
            let holder = ctx.load_one(leader, self.fallback_lock).await;

            // A committed escalatee releases the fallback lock.
            if holder != 0 {
                if let Some(l) = committed.iter().find(|&l| ctx.id().thread_id(l) + 1 == holder) {
                    ctx.store_one(l, self.fallback_lock, 0).await;
                    ctx.fence(LaneMask::lane(l)).await;
                    self.inner.stats().borrow_mut().fallback_commits += 1;
                }
            } else {
                // Escalate the most-starved lane once it crosses the
                // threshold. A lost CAS means another transaction
                // escalated first; this lane keeps its streak and wins a
                // later round.
                let esc = aborted.filter(|l| w.consec_aborts[l] >= self.cfg.fallback_after);
                if let Some(l) = esc.iter().max_by_key(|&l| w.consec_aborts[l]) {
                    let tid = ctx.id().thread_id(l) + 1;
                    let old = ctx.atomic_cas_one(l, self.fallback_lock, 0, tid).await;
                    if old == 0 {
                        self.inner.stats().borrow_mut().escalations += 1;
                        self.trace.emit(ctx, TxEventKind::Escalate { tid: tid - 1 });
                    }
                }
            }
        }

        // Decorrelate lockstep retries with bounded randomized backoff.
        if aborted.any() {
            let span = self.backoff_span(worst);
            self.trace.emit(ctx, TxEventKind::Backoff { cycles: span });
            ctx.idle(span).await;
        }
        committed
    }

    fn opaque(&self, w: &WarpTx) -> LaneMask {
        self.inner.opaque(w)
    }

    fn abort_storm(&self) -> bool {
        self.inner.abort_storm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{lane_addrs, lane_vals};
    use crate::config::StmConfig;
    use crate::shared::StmShared;
    use crate::variants::LockStm;
    use gpu_sim::{LaunchConfig, Sim, SimConfig};

    #[test]
    fn default_config_is_valid() {
        RobustConfig::default().validate().unwrap();
    }

    #[test]
    fn validation_rejects_degenerate_knobs() {
        let ok = RobustConfig::default();
        let c = RobustConfig { backoff_base: 0, ..ok };
        assert!(c.validate().is_err());
        let c = RobustConfig { backoff_cap: ok.backoff_base - 1, ..ok };
        assert!(c.validate().is_err());
        let c = RobustConfig { fallback_after: 0, ..ok };
        assert!(c.validate().is_err());
    }

    #[test]
    fn init_rejects_invalid_config() {
        let mut sim = Sim::new(SimConfig::with_memory(1 << 14));
        let cfg = StmConfig::new(1 << 6);
        let shared = StmShared::init(&mut sim, &cfg).unwrap();
        let inner = LockStm::hv_sorting(shared, cfg);
        let bad = RobustConfig { fallback_after: 0, ..RobustConfig::default() };
        let err = Robust::init(&mut sim, inner, bad).unwrap_err();
        assert!(matches!(err, SimError::BadLaunch(_)));
    }

    #[test]
    fn saturating_shl_saturates() {
        assert_eq!(32u64.saturating_shl(2), 128);
        assert_eq!(32u64.saturating_shl(63), u64::MAX);
        assert_eq!(32u64.saturating_shl(64), u64::MAX);
    }

    fn contended_run(
        robust_cfg: RobustConfig,
        n_counters: u32,
        grid: LaunchConfig,
        incr: u32,
    ) -> (crate::TxStats, u64, u64) {
        let mut simcfg = SimConfig::with_memory(1 << 18);
        simcfg.watchdog_cycles = 1 << 33;
        let mut sim = Sim::new(simcfg);
        let cfg = StmConfig::new(1 << 6);
        let shared = StmShared::init(&mut sim, &cfg).unwrap();
        let counters = sim.alloc(n_counters).unwrap();
        let stm =
            Rc::new(Robust::init(&mut sim, LockStm::hv_sorting(shared, cfg), robust_cfg).unwrap());
        let kstm = Rc::clone(&stm);
        sim.launch(grid, move |ctx| {
            let stm = Rc::clone(&kstm);
            async move {
                let mut w = stm.new_warp();
                let mut rng = gpu_sim::WarpRng::new(7, ctx.id().thread_id(0));
                let mut remaining = [incr; 32];
                loop {
                    let pending = ctx.id().launch_mask.filter(|l| remaining[l] > 0);
                    if pending.none() {
                        break;
                    }
                    let active = stm.begin(&mut w, &ctx, pending).await;
                    if active.none() {
                        continue;
                    }
                    let addrs = lane_addrs(active, |l| counters.offset(rng.below(l, n_counters)));
                    let vals = stm.read(&mut w, &ctx, active, &addrs).await;
                    let ok = active & stm.opaque(&w);
                    let upd = lane_vals(ok, |l| vals[l] + 1);
                    stm.write(&mut w, &ctx, ok, &addrs, &upd).await;
                    let committed = stm.commit(&mut w, &ctx, active).await;
                    for l in committed.iter() {
                        remaining[l] -= 1;
                    }
                }
            }
        })
        .unwrap();
        let total = sim.read_slice(counters, n_counters).iter().map(|v| *v as u64).sum();
        let expected = grid.total_threads() * incr as u64;
        let stats = stm.stats().borrow().clone();
        (stats, total, expected)
    }

    #[test]
    fn robust_preserves_correctness_under_contention() {
        let (stats, total, expected) =
            contended_run(RobustConfig::default(), 2, LaunchConfig::new(4, 64), 3);
        assert_eq!(total, expected);
        assert!(stats.aborts > 0, "workload should actually contend");
    }

    #[test]
    fn fallback_lock_released_after_escalated_commit() {
        // Aggressive escalation: every abort streak of 1 escalates, so
        // the fallback path is exercised constantly; the lock must still
        // end the run free and the counters exact.
        let cfg = RobustConfig { fallback_after: 1, ..RobustConfig::default() };
        let mut simcfg = SimConfig::with_memory(1 << 18);
        simcfg.watchdog_cycles = 1 << 33;
        let mut sim = Sim::new(simcfg);
        let stm_cfg = StmConfig::new(1 << 6);
        let shared = StmShared::init(&mut sim, &stm_cfg).unwrap();
        let counters = sim.alloc(2).unwrap();
        let stm =
            Rc::new(Robust::init(&mut sim, LockStm::hv_sorting(shared, stm_cfg), cfg).unwrap());
        let lock_addr = stm.fallback_lock_addr();
        let kstm = Rc::clone(&stm);
        sim.launch(LaunchConfig::new(2, 64), move |ctx| {
            let stm = Rc::clone(&kstm);
            async move {
                let mut w = stm.new_warp();
                let mut pending = ctx.id().launch_mask;
                while pending.any() {
                    let active = stm.begin(&mut w, &ctx, pending).await;
                    if active.none() {
                        continue;
                    }
                    let addrs = lane_addrs(active, |l| counters.offset((l % 2) as u32));
                    let vals = stm.read(&mut w, &ctx, active, &addrs).await;
                    let ok = active & stm.opaque(&w);
                    let upd = lane_vals(ok, |l| vals[l] + 1);
                    stm.write(&mut w, &ctx, ok, &addrs, &upd).await;
                    pending &= !stm.commit(&mut w, &ctx, active).await;
                }
            }
        })
        .unwrap();
        assert_eq!(sim.read(lock_addr), 0, "fallback lock must end free");
        let total: u64 = sim.read_slice(counters, 2).iter().map(|v| *v as u64).sum();
        assert_eq!(total, 2 * 64);
        let handle = stm.stats();
        let stats = handle.borrow();
        assert!(stats.escalations > 0, "threshold 1 must trigger escalation");
        assert_eq!(stats.fallback_commits, stats.escalations);
    }

    #[test]
    fn starvation_streaks_are_tracked_and_bounded() {
        // Same maximally-contended workload (one counter) with escalation
        // effectively disabled vs enabled: the fallback path must not
        // worsen the worst starvation streak, and must actually engage.
        let disabled = RobustConfig { fallback_after: u32::MAX, ..RobustConfig::default() };
        let (without, total, expected) = contended_run(disabled, 1, LaunchConfig::new(4, 64), 2);
        assert_eq!(total, expected);
        assert!(without.max_consec_aborts > 0, "single counter must starve someone");
        assert_eq!(without.escalations, 0);

        let enabled = RobustConfig { fallback_after: 4, ..RobustConfig::default() };
        let (with, total, expected) = contended_run(enabled, 1, LaunchConfig::new(4, 64), 2);
        assert_eq!(total, expected);
        assert!(with.escalations > 0, "threshold 4 must trigger under total conflict");
        assert_eq!(with.fallback_commits, with.escalations);
        assert!(
            with.max_consec_aborts <= without.max_consec_aborts,
            "escalation must not worsen starvation: {} vs {}",
            with.max_consec_aborts,
            without.max_consec_aborts
        );
    }

    #[test]
    fn degradation_rescues_pathological_cross_readwrite() {
        // Write-only locking + two lanes that read each other's write
        // target: in lockstep this mutually aborts forever (the
        // `write_only_locking_starves_on_cross_readwrite` integration
        // test proves the bare runtime hits the progress watchdog).
        // Robust's randomized backoff + serialized fallback must turn
        // that unbounded starvation into completion.
        let mut simcfg = SimConfig::with_memory(1 << 16);
        simcfg.watchdog_cycles = 1 << 33;
        let mut sim = Sim::new(simcfg);
        let mut cfg = StmConfig::new(1 << 6);
        cfg.lock_read_set = false;
        let shared = StmShared::init(&mut sim, &cfg).unwrap();
        let data = sim.alloc(2).unwrap();
        let robust_cfg = RobustConfig { fallback_after: 3, ..RobustConfig::default() };
        let stm =
            Rc::new(Robust::init(&mut sim, LockStm::hv_sorting(shared, cfg), robust_cfg).unwrap());
        let kstm = Rc::clone(&stm);
        sim.launch(LaunchConfig::new(1, 32), move |ctx| {
            let stm = Rc::clone(&kstm);
            async move {
                let mut w = stm.new_warp();
                let mut pending = gpu_sim::LaneMask::first_n(2);
                // Lane 0: read data[1], write data[0]; lane 1 vice versa.
                while pending.any() {
                    let active = stm.begin(&mut w, &ctx, pending).await;
                    if active.none() {
                        continue;
                    }
                    let raddr = lane_addrs(active, |l| data.offset(1 - l as u32));
                    let vals = stm.read(&mut w, &ctx, active, &raddr).await;
                    let ok = active & stm.opaque(&w);
                    let waddr = lane_addrs(ok, |l| data.offset(l as u32));
                    let upd = lane_vals(ok, |l| vals[l] + 1);
                    stm.write(&mut w, &ctx, ok, &waddr, &upd).await;
                    pending &= !stm.commit(&mut w, &ctx, active).await;
                }
            }
        })
        .unwrap();
        assert_eq!(sim.read(stm.fallback_lock_addr()), 0);
        let handle = stm.stats();
        let stats = handle.borrow();
        assert_eq!(stats.commits, 2, "both cross transactions must land");
        assert!(stats.max_consec_aborts > 0, "the pathology must have bitten first");
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let run = |seed| {
            let cfg = RobustConfig { seed, ..RobustConfig::default() };
            let (stats, total, expected) = contended_run(cfg, 2, LaunchConfig::new(2, 64), 2);
            assert_eq!(total, expected);
            (stats.commits, stats.aborts)
        };
        assert_eq!(run(3), run(3), "same seed must reproduce exactly");
    }
}
