//! Transactional statistics: commit/abort accounting and the per-phase
//! execution-time breakdown used for the paper's Figure 5.

use gpu_sim::json::JsonWriter;
use std::cell::RefCell;
use std::rc::Rc;

/// Why a transaction attempt aborted.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AbortCause {
    /// Read-time consistency check failed (snapshot stale, value changed).
    ReadValidation,
    /// Commit-time timestamp validation failed (TBV-only mode).
    CommitTbv,
    /// Commit-time value-based validation failed.
    CommitVbv,
    /// Optional pre-locking value validation failed (Algorithm 3 line 71).
    PreVbv,
    /// Encounter-time stripe lock was busy (EGPGV-style blocking STM).
    LockBusy,
}

/// All abort causes in display order.
pub const ABORT_CAUSES: [AbortCause; 5] = [
    AbortCause::ReadValidation,
    AbortCause::CommitTbv,
    AbortCause::CommitVbv,
    AbortCause::PreVbv,
    AbortCause::LockBusy,
];

impl AbortCause {
    /// Short kebab-case label, used by exporters and reports.
    pub fn label(self) -> &'static str {
        match self {
            AbortCause::ReadValidation => "read-validation",
            AbortCause::CommitTbv => "commit-tbv",
            AbortCause::CommitVbv => "commit-vbv",
            AbortCause::PreVbv => "pre-vbv",
            AbortCause::LockBusy => "lock-busy",
        }
    }

    /// Index of this cause within [`ABORT_CAUSES`].
    pub fn index(self) -> usize {
        match self {
            AbortCause::ReadValidation => 0,
            AbortCause::CommitTbv => 1,
            AbortCause::CommitVbv => 2,
            AbortCause::PreVbv => 3,
            AbortCause::LockBusy => 4,
        }
    }
}

/// Execution phases of a transactional thread, matching the paper's
/// Figure 5 breakdown categories.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Non-transactional program work.
    Native = 0,
    /// `TXBegin`: clock snapshot, metadata reset.
    Init = 1,
    /// Read-/write-set and lock-log bookkeeping ("buffering").
    Buffering = 2,
    /// Read-time consistency checking and post-validation.
    Consistency = 3,
    /// Acquiring and releasing commit locks.
    Locking = 4,
    /// Commit-time validation, write-back, clock/version publication.
    Commit = 5,
    /// Work belonging to attempts that eventually aborted.
    Aborted = 6,
    /// Wall-clock spent descheduled on the parked set by a blocking
    /// `retry()` (see `gpu_stm::park`). Unlike every other phase this is
    /// *waiting*, not work: a healthy blocking workload shows large
    /// `Parked` and near-zero `Aborted` where the abort-respin baseline
    /// shows the reverse.
    Parked = 7,
}

/// Number of [`Phase`] categories.
pub const NUM_PHASES: usize = 8;

/// Cycles attributed to each phase. Fractions arise because warp-level
/// time is shared across the lanes that were active.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Breakdown {
    cycles: [f64; NUM_PHASES],
}

impl Breakdown {
    /// Creates a zeroed breakdown.
    pub fn new() -> Self {
        Breakdown::default()
    }

    /// Adds `cycles` to `phase`.
    pub fn add(&mut self, phase: Phase, cycles: f64) {
        self.cycles[phase as usize] += cycles;
    }

    /// Cycles attributed to `phase`.
    pub fn get(&self, phase: Phase) -> f64 {
        self.cycles[phase as usize]
    }

    /// Total cycles across phases.
    pub fn total(&self) -> f64 {
        self.cycles.iter().sum()
    }

    /// Percentage share of `phase`, 0 if the breakdown is empty.
    pub fn percent(&self, phase: Phase) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.get(phase) / t * 100.0
        }
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &Breakdown) {
        for i in 0..NUM_PHASES {
            self.cycles[i] += other.cycles[i];
        }
    }

    /// Adds `v` cycles to the phase with raw index `i` (crate-internal:
    /// used by the proportional attempt flush).
    pub(crate) fn add_index(&mut self, i: usize, v: f64) {
        self.cycles[i] += v;
    }

    /// Per-phase cycles as IEEE-754 bit patterns, for exact (lossless)
    /// serialization into checkpoint/WAL formats.
    pub fn to_bits(&self) -> [u64; NUM_PHASES] {
        std::array::from_fn(|i| self.cycles[i].to_bits())
    }

    /// Reconstructs a breakdown from [`to_bits`](Self::to_bits) output.
    pub fn from_bits(bits: [u64; NUM_PHASES]) -> Self {
        Breakdown { cycles: std::array::from_fn(|i| f64::from_bits(bits[i])) }
    }

    /// Serializes per-phase cycles into `w` as a JSON object keyed by
    /// [`phase_label`], in [`PHASES`] order, with the total last.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        for p in PHASES {
            w.field_f64(phase_label(p), self.get(p));
        }
        w.field_f64("total", self.total());
        w.end_object();
    }

    /// The breakdown as a standalone JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

/// All phases in display order.
pub const PHASES: [Phase; NUM_PHASES] = [
    Phase::Native,
    Phase::Init,
    Phase::Buffering,
    Phase::Consistency,
    Phase::Locking,
    Phase::Commit,
    Phase::Aborted,
    Phase::Parked,
];

/// Short label for a phase (column headers in the harness output).
pub fn phase_label(p: Phase) -> &'static str {
    match p {
        Phase::Native => "native",
        Phase::Init => "tx-init",
        Phase::Buffering => "buffering",
        Phase::Consistency => "consistency",
        Phase::Locking => "locks",
        Phase::Commit => "commit",
        Phase::Aborted => "aborted",
        Phase::Parked => "parked",
    }
}

/// Aggregate transactional counters for a kernel run.
#[derive(Clone, Debug, Default)]
pub struct TxStats {
    /// Committed transactions.
    pub commits: u64,
    /// Committed read-only transactions (subset of `commits`).
    pub read_only_commits: u64,
    /// Aborted attempts, total.
    pub aborts: u64,
    /// Aborts by cause.
    pub aborts_read_validation: u64,
    /// Commit-time TBV aborts.
    pub aborts_commit_tbv: u64,
    /// Commit-time VBV aborts.
    pub aborts_commit_vbv: u64,
    /// Pre-locking VBV aborts.
    pub aborts_pre_vbv: u64,
    /// Encounter-time lock-busy aborts.
    pub aborts_lock_busy: u64,
    /// Commit-lock acquisition rounds that failed and retried
    /// (not aborts: the transaction keeps its logs, Algorithm 3 line 74).
    pub lock_retries: u64,
    /// Times hierarchical validation found a stale timestamp but
    /// value-based validation proved the data unchanged — a false conflict
    /// that pure TBV would have aborted on.
    pub false_conflicts_filtered: u64,
    /// Total read-set entries across committed transactions
    /// (`reads_committed / commits` = the paper's RD/TX).
    pub reads_committed: u64,
    /// Total write-set entries across committed transactions
    /// (`writes_committed / commits` = the paper's WR/TX).
    pub writes_committed: u64,
    /// Longest run of consecutive aborts any single transaction suffered
    /// (starvation measure, tracked by the `Robust` wrapper).
    pub max_consec_aborts: u64,
    /// Times a starving transaction escalated to the serialized
    /// fallback-lock commit path.
    pub escalations: u64,
    /// Commits that completed while holding the fallback lock.
    pub fallback_commits: u64,
    /// Times a retrying transaction registered its read set and parked
    /// (the blocking `retry()` path; see `gpu_stm::park`).
    pub parks: u64,
    /// Times a parked transaction was woken by an intersecting commit or
    /// a park-budget timeout.
    pub wakes: u64,
    /// Wakes whose revalidation found the read set unchanged (injected
    /// spurious wakes and budget timeouts that re-parked).
    pub spurious_wakes: u64,
    /// Per-phase time attribution.
    pub breakdown: Breakdown,
}

impl TxStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        TxStats::default()
    }

    /// Records an abort of the given cause.
    pub fn record_abort(&mut self, cause: AbortCause) {
        self.aborts += 1;
        match cause {
            AbortCause::ReadValidation => self.aborts_read_validation += 1,
            AbortCause::CommitTbv => self.aborts_commit_tbv += 1,
            AbortCause::CommitVbv => self.aborts_commit_vbv += 1,
            AbortCause::PreVbv => self.aborts_pre_vbv += 1,
            AbortCause::LockBusy => self.aborts_lock_busy += 1,
        }
    }

    /// Serializes every counter (and the phase breakdown, losslessly as
    /// IEEE-754 bits) into a flat word vector for checkpoint formats.
    /// The exhaustive destructuring makes adding a `TxStats` field
    /// without extending the encoding a compile error.
    pub fn encode(&self) -> Vec<u64> {
        let TxStats {
            commits,
            read_only_commits,
            aborts,
            aborts_read_validation,
            aborts_commit_tbv,
            aborts_commit_vbv,
            aborts_pre_vbv,
            aborts_lock_busy,
            lock_retries,
            false_conflicts_filtered,
            reads_committed,
            writes_committed,
            max_consec_aborts,
            escalations,
            fallback_commits,
            parks,
            wakes,
            spurious_wakes,
            ref breakdown,
        } = *self;
        let mut out = vec![
            commits,
            read_only_commits,
            aborts,
            aborts_read_validation,
            aborts_commit_tbv,
            aborts_commit_vbv,
            aborts_pre_vbv,
            aborts_lock_busy,
            lock_retries,
            false_conflicts_filtered,
            reads_committed,
            writes_committed,
            max_consec_aborts,
            escalations,
            fallback_commits,
            parks,
            wakes,
            spurious_wakes,
        ];
        out.extend(breakdown.to_bits());
        out
    }

    /// Reconstructs counters from [`encode`](Self::encode) output;
    /// `None` if the word count does not match this crate's layout.
    pub fn decode(words: &[u64]) -> Option<TxStats> {
        if words.len() != 18 + NUM_PHASES {
            return None;
        }
        let mut bits = [0u64; NUM_PHASES];
        bits.copy_from_slice(&words[18..]);
        Some(TxStats {
            commits: words[0],
            read_only_commits: words[1],
            aborts: words[2],
            aborts_read_validation: words[3],
            aborts_commit_tbv: words[4],
            aborts_commit_vbv: words[5],
            aborts_pre_vbv: words[6],
            aborts_lock_busy: words[7],
            lock_retries: words[8],
            false_conflicts_filtered: words[9],
            reads_committed: words[10],
            writes_committed: words[11],
            max_consec_aborts: words[12],
            escalations: words[13],
            fallback_commits: words[14],
            parks: words[15],
            wakes: words[16],
            spurious_wakes: words[17],
            breakdown: Breakdown::from_bits(bits),
        })
    }

    /// Abort rate: aborts / (commits + aborts); 0 when idle.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.commits + self.aborts;
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }

    /// Serializes the counters plus derived metrics and the phase
    /// breakdown into `w` as a JSON object, in a stable field order (raw
    /// counters first, derived rates, then the breakdown) so report diffs
    /// are reviewable.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_u64("commits", self.commits);
        w.field_u64("read_only_commits", self.read_only_commits);
        w.field_u64("aborts", self.aborts);
        w.field_u64("aborts_read_validation", self.aborts_read_validation);
        w.field_u64("aborts_commit_tbv", self.aborts_commit_tbv);
        w.field_u64("aborts_commit_vbv", self.aborts_commit_vbv);
        w.field_u64("aborts_pre_vbv", self.aborts_pre_vbv);
        w.field_u64("aborts_lock_busy", self.aborts_lock_busy);
        w.field_u64("lock_retries", self.lock_retries);
        w.field_u64("false_conflicts_filtered", self.false_conflicts_filtered);
        w.field_u64("reads_committed", self.reads_committed);
        w.field_u64("writes_committed", self.writes_committed);
        w.field_u64("max_consec_aborts", self.max_consec_aborts);
        w.field_u64("escalations", self.escalations);
        w.field_u64("fallback_commits", self.fallback_commits);
        w.field_u64("parks", self.parks);
        w.field_u64("wakes", self.wakes);
        w.field_u64("spurious_wakes", self.spurious_wakes);
        w.field_f64("abort_rate", self.abort_rate());
        w.key("breakdown");
        self.breakdown.write_json(w);
        w.end_object();
    }

    /// The counters as a standalone JSON object (see
    /// [`write_json`](Self::write_json)).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

/// Shared handle to run statistics, cloned into each variant.
pub type StatsHandle = Rc<RefCell<TxStats>>;

/// Creates a fresh stats handle.
pub fn stats_handle() -> StatsHandle {
    Rc::new(RefCell::new(TxStats::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_accounting() {
        let mut s = TxStats::new();
        s.commits = 3;
        s.record_abort(AbortCause::CommitVbv);
        s.record_abort(AbortCause::ReadValidation);
        assert_eq!(s.aborts, 2);
        assert_eq!(s.aborts_commit_vbv, 1);
        assert_eq!(s.aborts_read_validation, 1);
        assert!((s.abort_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn abort_rate_idle_is_zero() {
        assert_eq!(TxStats::new().abort_rate(), 0.0);
    }

    #[test]
    fn breakdown_percentages() {
        let mut b = Breakdown::new();
        b.add(Phase::Native, 30.0);
        b.add(Phase::Commit, 70.0);
        assert!((b.percent(Phase::Commit) - 70.0).abs() < 1e-9);
        assert!((b.total() - 100.0).abs() < 1e-9);
        assert_eq!(b.percent(Phase::Aborted), 0.0);
    }

    #[test]
    fn breakdown_merge() {
        let mut a = Breakdown::new();
        a.add(Phase::Init, 5.0);
        let mut b = Breakdown::new();
        b.add(Phase::Init, 7.0);
        b.add(Phase::Locking, 1.0);
        a.merge(&b);
        assert_eq!(a.get(Phase::Init), 12.0);
        assert_eq!(a.get(Phase::Locking), 1.0);
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> = PHASES.iter().map(|p| phase_label(*p)).collect();
        assert_eq!(labels.len(), NUM_PHASES);
    }

    #[test]
    fn empty_breakdown_percent_is_zero() {
        assert_eq!(Breakdown::new().percent(Phase::Native), 0.0);
    }

    #[test]
    fn cause_labels_and_indices_are_unique() {
        let labels: std::collections::HashSet<_> = ABORT_CAUSES.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), ABORT_CAUSES.len());
        for (i, c) in ABORT_CAUSES.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn tx_stats_json_stable_order() {
        let mut s = TxStats::new();
        s.commits = 3;
        s.record_abort(AbortCause::LockBusy);
        s.breakdown.add(Phase::Commit, 10.0);
        let j = s.to_json();
        assert!(j.starts_with(r#"{"commits":3,"#), "{j}");
        assert!(j.contains(r#""abort_rate":0.250000"#), "{j}");
        assert!(j.contains(r#""breakdown":{"native":0.000000,"#), "{j}");
        assert!(j.ends_with(r#""total":10.000000}}"#), "{j}");
    }
}
