//! Encounter-time lock-sorting: the per-transaction local lock table
//! (Sections 3.1 and 3.2.1).
//!
//! On every transactional read or write, the global lock index guarding the
//! accessed stripe is inserted — *in sorted position* — into the
//! transaction's lock-log, together with read-/write-bits. At commit the
//! log is walked in ascending lock-id order, so all transactions
//! system-wide acquire locks in one global order and livelock is impossible
//! even under lockstep execution.
//!
//! A flat sorted list makes insertion O(n²) over the transaction's life;
//! the paper reduces this with an *order-preserving hash table*: an
//! incoming lock is hashed to a bucket by its high bits (so bucket order =
//! lock order) and inserted in sorted position within the bucket. Walking
//! buckets in order then yields the globally sorted sequence.

/// One lock-log entry: a global lock index plus whether the transaction
/// read from / wrote to the stripe it guards.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LockEntry {
    /// Index into the global lock table.
    pub lock: u32,
    /// The stripe was transactionally read (commit must validate it).
    pub read: bool,
    /// The stripe was transactionally written (commit publishes a new
    /// version to it).
    pub write: bool,
}

/// A per-lane order-preserving hash table of lock indices.
#[derive(Clone, Debug)]
pub struct LockLog {
    buckets: Vec<Vec<LockEntry>>,
    /// log2 of the global lock-table size, for bucket selection by high bits.
    lock_bits: u32,
    len: usize,
    /// Lock ids in first-insertion (encounter) order. The commit path never
    /// uses this — it exists so the seeded `unsorted_locks` mutant can
    /// acquire in the order the paper's sorting deliberately avoids, and so
    /// diagnostics can report where a lock entered the transaction.
    order: Vec<u32>,
}

impl LockLog {
    /// Creates a log with `n_buckets` buckets for a global table of
    /// `n_locks` locks. `n_buckets == 1` degrades to the flat sorted list.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are powers of two and
    /// `n_buckets <= n_locks`.
    pub fn new(n_buckets: u32, n_locks: u32) -> Self {
        assert!(n_buckets.is_power_of_two(), "bucket count must be a power of two");
        assert!(n_locks.is_power_of_two(), "lock count must be a power of two");
        assert!(n_buckets <= n_locks, "more buckets than locks");
        LockLog {
            buckets: vec![Vec::new(); n_buckets as usize],
            lock_bits: n_locks.trailing_zeros(),
            len: 0,
            order: Vec::new(),
        }
    }

    #[inline]
    fn bucket_of(&self, lock: u32) -> usize {
        // High bits preserve order across buckets.
        let bucket_bits = (self.buckets.len() as u32).trailing_zeros();
        (lock >> (self.lock_bits - bucket_bits)) as usize
    }

    /// Number of distinct locks recorded.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no lock has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether any recorded stripe was written.
    pub fn has_writes(&self) -> bool {
        self.buckets.iter().flatten().any(|e| e.write)
    }

    /// Inserts `lock` with the given intent, merging bits if it is already
    /// present (duplication is avoided, Section 3.1). Returns the number
    /// of comparison steps performed — the cost the timing model charges.
    pub fn insert(&mut self, lock: u32, read: bool, write: bool) -> u32 {
        let b = self.bucket_of(lock);
        let bucket = &mut self.buckets[b];
        let mut comparisons = 0;
        for i in 0..bucket.len() {
            comparisons += 1;
            if bucket[i].lock == lock {
                bucket[i].read |= read;
                bucket[i].write |= write;
                return comparisons;
            }
            if bucket[i].lock > lock {
                bucket.insert(i, LockEntry { lock, read, write });
                self.len += 1;
                self.order.push(lock);
                return comparisons;
            }
        }
        bucket.push(LockEntry { lock, read, write });
        self.len += 1;
        self.order.push(lock);
        comparisons
    }

    /// Looks up the entry for `lock`, if present.
    pub fn get(&self, lock: u32) -> Option<LockEntry> {
        let b = self.bucket_of(lock);
        self.buckets[b].iter().copied().find(|e| e.lock == lock)
    }

    /// Iterates entries in ascending global lock order — the commit-time
    /// acquisition order.
    pub fn iter_sorted(&self) -> impl Iterator<Item = LockEntry> + '_ {
        self.buckets.iter().flatten().copied()
    }

    /// The `k`-th entry in sorted order. O(buckets) to locate; commit
    /// walks with an explicit cursor instead, but this is convenient for
    /// lockstep round `k` access.
    pub fn nth_sorted(&self, k: usize) -> Option<LockEntry> {
        let mut rem = k;
        for b in &self.buckets {
            if rem < b.len() {
                return Some(b[rem]);
            }
            rem -= b.len();
        }
        None
    }

    /// The `k`-th entry in first-insertion (encounter) order, with its
    /// *current* merged read/write bits. See the `order` field for why
    /// this exists.
    pub fn nth_inserted(&self, k: usize) -> Option<LockEntry> {
        self.order.get(k).and_then(|&lock| self.get(lock))
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(log: &LockLog) -> Vec<u32> {
        log.iter_sorted().map(|e| e.lock).collect()
    }

    #[test]
    fn insert_keeps_global_order() {
        let mut log = LockLog::new(4, 64);
        for lock in [50, 3, 17, 40, 9, 0, 63] {
            log.insert(lock, true, false);
        }
        assert_eq!(collect(&log), vec![0, 3, 9, 17, 40, 50, 63]);
        assert_eq!(log.len(), 7);
    }

    #[test]
    fn duplicates_merge_bits() {
        let mut log = LockLog::new(4, 64);
        log.insert(5, true, false);
        log.insert(5, false, true);
        assert_eq!(log.len(), 1);
        let e = log.get(5).unwrap();
        assert!(e.read && e.write);
    }

    #[test]
    fn flat_single_bucket_still_sorted_but_more_comparisons() {
        let mut flat = LockLog::new(1, 64);
        let mut hashed = LockLog::new(16, 64);
        let locks: Vec<u32> = (0..32).map(|i| (i * 37) % 64).collect();
        let mut flat_cmp = 0;
        let mut hashed_cmp = 0;
        for &l in &locks {
            flat_cmp += flat.insert(l, true, false);
            hashed_cmp += hashed.insert(l, true, false);
        }
        assert_eq!(collect(&flat), collect(&hashed));
        assert!(
            hashed_cmp < flat_cmp,
            "hash table should reduce comparisons: {hashed_cmp} vs {flat_cmp}"
        );
    }

    #[test]
    fn nth_sorted_matches_iteration() {
        let mut log = LockLog::new(4, 64);
        for lock in [9, 1, 33, 62] {
            log.insert(lock, false, true);
        }
        let via_iter = collect(&log);
        for (k, expect) in via_iter.iter().enumerate() {
            assert_eq!(log.nth_sorted(k).unwrap().lock, *expect);
        }
        assert!(log.nth_sorted(4).is_none());
    }

    #[test]
    fn has_writes() {
        let mut log = LockLog::new(2, 16);
        log.insert(3, true, false);
        assert!(!log.has_writes());
        log.insert(3, false, true);
        assert!(log.has_writes());
    }

    #[test]
    fn clear_empties() {
        let mut log = LockLog::new(2, 16);
        log.insert(3, true, true);
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.nth_sorted(0), None);
        assert_eq!(log.nth_inserted(0), None);
    }

    #[test]
    fn nth_inserted_keeps_encounter_order_and_merged_bits() {
        let mut log = LockLog::new(4, 64);
        log.insert(50, true, false);
        log.insert(3, false, true);
        log.insert(50, false, true); // duplicate: merges, no new position
        log.insert(17, true, false);
        let inserted: Vec<u32> = (0..3).map(|k| log.nth_inserted(k).unwrap().lock).collect();
        assert_eq!(inserted, vec![50, 3, 17]);
        let e = log.nth_inserted(0).unwrap();
        assert!(e.read && e.write, "bits merge across duplicate inserts");
        assert_eq!(log.nth_inserted(3), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_bucket_count_rejected() {
        let _ = LockLog::new(3, 16);
    }

    #[test]
    fn bucket_order_uses_high_bits() {
        // With 2 buckets over 16 locks, locks 0-7 land in bucket 0 and 8-15
        // in bucket 1, so cross-bucket iteration is globally sorted.
        let mut log = LockLog::new(2, 16);
        log.insert(12, true, false);
        log.insert(2, true, false);
        log.insert(8, true, false);
        log.insert(7, true, false);
        assert_eq!(collect(&log), vec![2, 7, 8, 12]);
    }
}
