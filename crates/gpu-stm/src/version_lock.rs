//! Versioned lock words (Section 3.2.1).
//!
//! Each entry of the global lock table is an unsigned integer whose least
//! significant bit says whether the memory stripe is locked and whose
//! remaining bits carry the stripe's version — the global-clock value at
//! which it was last committed.

/// A decoded global version lock word.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default, Hash)]
pub struct VersionLock(pub u32);

impl VersionLock {
    /// Whether the stripe is locked (LSB set).
    #[inline]
    pub const fn is_locked(self) -> bool {
        self.0 & 1 != 0
    }

    /// The stripe version (word shifted right by one).
    #[inline]
    pub const fn version(self) -> u32 {
        self.0 >> 1
    }

    /// Encodes an unlocked word carrying `version`.
    #[inline]
    pub const fn unlocked(version: u32) -> Self {
        VersionLock(version << 1)
    }

    /// This word with the lock bit set.
    #[inline]
    pub const fn locked(self) -> Self {
        VersionLock(self.0 | 1)
    }

    /// This word with the lock bit cleared, version unchanged — the
    /// `g_lockTab[i] - 1` release of Algorithm 3 line 55/61.
    #[inline]
    pub const fn released(self) -> Self {
        VersionLock(self.0 & !1)
    }

    /// Raw word value.
    #[inline]
    pub const fn bits(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for VersionLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}{}", self.version(), if self.is_locked() { "+L" } else { "" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = VersionLock::unlocked(42);
        assert!(!v.is_locked());
        assert_eq!(v.version(), 42);
        let l = v.locked();
        assert!(l.is_locked());
        assert_eq!(l.version(), 42);
        assert_eq!(l.released(), v);
    }

    #[test]
    fn release_by_decrement_matches_paper() {
        // Algorithm 3 line 55: g_lockTab[i] <- g_lockTab[i] - 1.
        let locked = VersionLock::unlocked(7).locked();
        assert_eq!(VersionLock(locked.bits() - 1), VersionLock::unlocked(7));
    }

    #[test]
    fn zero_word_is_unlocked_version_zero() {
        let v = VersionLock(0);
        assert!(!v.is_locked());
        assert_eq!(v.version(), 0);
    }

    #[test]
    fn display_shows_lock_state() {
        assert_eq!(VersionLock::unlocked(3).to_string(), "v3");
        assert_eq!(VersionLock::unlocked(3).locked().to_string(), "v3+L");
    }
}
