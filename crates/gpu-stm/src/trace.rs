//! Transaction-lifecycle event tracing and the Chrome-trace exporter.
//!
//! The STM side of the telemetry layer (DESIGN.md §10). Every variant
//! emits cycle-timestamped [`TxEvent`]s — begin / read / write / validate
//! / lock / conflict / abort-with-[`AbortCause`] / commit — and the
//! [`Robust`](crate::Robust) and [`Scheduled`](crate::Scheduled) wrappers
//! add escalation, backoff and concurrency-throttle events. Emission
//! follows the simulator's tracing contract ([`gpu_sim::trace`]): pure
//! observation, zero cycles charged, no-op when no sink is attached.
//!
//! Two stream invariants are maintained (and pinned by the workspace's
//! `trace_invariants` test):
//!
//! - **Well-nesting per warp**: every `Begin` with a non-empty admitted
//!   mask is followed by exactly one `Commit` (the attempt-resolution
//!   event) before the warp's next `Begin`; instantaneous events (reads,
//!   validation, aborts, conflicts) appear between them.
//! - **Reconciliation**: summed over the stream, `Commit.committed`
//!   equals [`TxStats::commits`] and `Abort.lanes` equals
//!   [`TxStats::aborts`] exactly.
//!
//! One caveat on abort *causes*: STM-VBV (NOrec) first records a
//! commit-time value-validation failure as `ReadValidation` and then
//! reclassifies it in the stats; events carry the initial cause, so
//! per-cause event counts can differ from the stats' per-cause split for
//! that variant (totals always reconcile).
//!
//! [`chrome_trace`] merges a simulator event stream with a transaction
//! event stream into Chrome's JSON trace-event format (one process per
//! block, one thread track per warp, transaction attempts as nested
//! slices), which <https://ui.perfetto.dev> loads directly.

use crate::stats::AbortCause;
use gpu_sim::json::JsonWriter;
use gpu_sim::trace::{SimEvent, SimEventKind};
use gpu_sim::WarpCtx;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::rc::Rc;

/// What happened (the payload of a [`TxEvent`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TxEventKind {
    /// A transaction attempt started on `lanes` lanes (only emitted when
    /// the admitted mask is non-empty).
    Begin {
        /// Admitted lanes.
        lanes: u32,
    },
    /// A transactional read instruction.
    Read {
        /// Active lanes.
        lanes: u32,
    },
    /// A transactional write instruction.
    Write {
        /// Active lanes.
        lanes: u32,
    },
    /// A consistency-validation step (read-time or commit-time).
    Validate {
        /// Lanes whose read-sets were checked.
        checked: u32,
        /// Lanes that failed and must abort.
        failed: u32,
    },
    /// A commit-lock acquisition round.
    Lock {
        /// Lanes that tried to acquire.
        lanes: u32,
        /// Lanes that found a lock busy and backed out.
        busy: u32,
    },
    /// One lane observed one busy/contended lock stripe (the contention
    /// profiler's unit of conflict).
    Conflict {
        /// Index of the contended stripe in the lock table.
        stripe: u32,
    },
    /// `lanes` lane-transactions aborted for `cause`.
    Abort {
        /// Why the attempt(s) aborted.
        cause: AbortCause,
        /// Number of aborting lanes.
        lanes: u32,
    },
    /// The attempt-resolution event closing a `Begin`: emitted exactly
    /// once per `commit` call.
    Commit {
        /// Lanes that committed in this call.
        committed: u32,
        /// Lanes of the attempt that resolved as aborted.
        aborted: u32,
    },
    /// A starving lane escalated to the serialized fallback-lock path.
    Escalate {
        /// Global thread id of the escalating lane.
        tid: u32,
    },
    /// The `Robust` wrapper charged an abort-backoff delay.
    Backoff {
        /// Length of the backoff span in cycles.
        cycles: u64,
    },
    /// The AIMD scheduler changed its warp-concurrency limit.
    Throttle {
        /// The new limit (warps allowed to run transactions).
        limit: u32,
    },
    /// `lanes` retrying lane-transactions registered on `watched` read-set
    /// addresses and parked the warp (the blocking `retry()` path).
    Park {
        /// Lanes whose transactions parked.
        lanes: u32,
        /// Distinct read-set addresses registered in the waker registry.
        watched: u32,
    },
    /// A parked warp resumed because a commit's write set intersected its
    /// registration (or its park budget expired).
    Wake {
        /// Whether the wake was a budget timeout rather than a commit.
        timed_out: bool,
    },
    /// A fault-injected wake fired with no intersecting commit: the warp
    /// must revalidate and re-park (tests waker-loop robustness).
    SpuriousWake,
}

/// One cycle-timestamped transaction-lifecycle event.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TxEvent {
    /// Simulated cycle of emission.
    pub cycle: u64,
    /// Block index of the emitting warp.
    pub block: u32,
    /// Warp index within its block.
    pub warp: u32,
    /// Event payload.
    pub kind: TxEventKind,
}

/// Bounded ring buffer of [`TxEvent`]s (same semantics as
/// [`gpu_sim::trace::TraceBuffer`]).
#[derive(Debug)]
pub struct TxTraceBuffer {
    events: VecDeque<TxEvent>,
    capacity: usize,
    emitted: u64,
    dropped: u64,
}

impl TxTraceBuffer {
    /// Creates a buffer holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TxTraceBuffer {
            events: VecDeque::with_capacity(capacity.min(1 << 16)),
            capacity,
            emitted: 0,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, ev: TxEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
        self.emitted += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TxEvent> {
        self.events.iter()
    }

    /// Copies the retained events out, oldest first.
    pub fn snapshot(&self) -> Vec<TxEvent> {
        self.events.iter().copied().collect()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever pushed (including later-dropped ones).
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Discards all retained events (counters keep accumulating).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Moves the retained events out, oldest first, leaving the buffer
    /// empty (counters keep accumulating). The epoch-windowed tap used
    /// by live observability: drain once per window and ship the slice.
    pub fn drain(&mut self) -> Vec<TxEvent> {
        self.events.drain(..).collect()
    }
}

/// Shared handle to a [`TxTraceBuffer`].
pub type TxTraceSink = Rc<RefCell<TxTraceBuffer>>;

/// Creates a [`TxTraceSink`] with the given ring capacity.
pub fn tx_trace_sink(capacity: usize) -> TxTraceSink {
    Rc::new(RefCell::new(TxTraceBuffer::new(capacity)))
}

/// A variant's (possibly absent) connection to a trace sink: the no-op
/// default makes every emission a branch on `None`.
#[derive(Clone, Debug, Default)]
pub struct TxTrace {
    sink: Option<TxTraceSink>,
}

impl TxTrace {
    /// A disabled trace (the default for every variant).
    pub fn off() -> Self {
        TxTrace::default()
    }

    /// A trace connected to `sink`.
    pub fn to(sink: TxTraceSink) -> Self {
        TxTrace { sink: Some(sink) }
    }

    /// Whether a sink is attached.
    pub fn is_on(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits `kind` stamped with `ctx`'s current cycle and warp identity.
    /// Pure observation: charges no cycles; no-op without a sink.
    pub fn emit(&self, ctx: &WarpCtx, kind: TxEventKind) {
        if let Some(s) = &self.sink {
            let id = ctx.id();
            s.borrow_mut().push(TxEvent {
                cycle: ctx.now(),
                block: id.block,
                warp: id.warp_in_block,
                kind,
            });
        }
    }
}

fn write_event_head(
    w: &mut JsonWriter,
    name: &str,
    ph: &str,
    cycle: u64,
    block: u32,
    warp: u32,
    cat: &str,
) {
    w.begin_object();
    w.field_str("name", name);
    w.field_str("cat", cat);
    w.field_str("ph", ph);
    w.field_u64("ts", cycle);
    w.field_u64("pid", block as u64);
    w.field_u64("tid", warp as u64);
}

fn write_sim_event(w: &mut JsonWriter, e: &SimEvent) {
    match e.kind {
        SimEventKind::WarpStart => {
            write_event_head(w, "warp", "B", e.cycle, e.block, e.warp, "sim");
            w.end_object();
        }
        SimEventKind::WarpRetire => {
            write_event_head(w, "warp", "E", e.cycle, e.block, e.warp, "sim");
            w.end_object();
        }
        SimEventKind::Mem { op, lanes, transactions, l2_hits, l2_misses } => {
            write_event_head(w, op.label(), "i", e.cycle, e.block, e.warp, "mem");
            w.field_str("s", "t");
            w.key("args");
            w.begin_object();
            w.field_u64("lanes", lanes as u64);
            w.field_u64("transactions", transactions as u64);
            w.field_u64("l2_hits", l2_hits as u64);
            w.field_u64("l2_misses", l2_misses as u64);
            w.end_object();
            w.end_object();
        }
        SimEventKind::Fence => {
            write_event_head(w, "fence", "i", e.cycle, e.block, e.warp, "mem");
            w.field_str("s", "t");
            w.end_object();
        }
        SimEventKind::Idle { cycles } => {
            write_event_head(w, "idle", "X", e.cycle, e.block, e.warp, "sim");
            w.field_u64("dur", cycles);
            w.end_object();
        }
        SimEventKind::Park { watched } => {
            write_event_head(w, "park", "i", e.cycle, e.block, e.warp, "sim");
            w.field_str("s", "t");
            w.key("args");
            w.begin_object();
            w.field_u64("watched", watched as u64);
            w.end_object();
            w.end_object();
        }
        SimEventKind::Wake { timed_out } => {
            write_event_head(w, "wake", "i", e.cycle, e.block, e.warp, "sim");
            w.field_str("s", "t");
            w.key("args");
            w.begin_object();
            w.field_u64("timed_out", timed_out as u64);
            w.end_object();
            w.end_object();
        }
    }
}

fn write_tx_event(w: &mut JsonWriter, e: &TxEvent) {
    match e.kind {
        TxEventKind::Begin { lanes } => {
            write_event_head(w, "tx", "B", e.cycle, e.block, e.warp, "stm");
            w.key("args");
            w.begin_object();
            w.field_u64("lanes", lanes as u64);
            w.end_object();
            w.end_object();
        }
        TxEventKind::Commit { committed, aborted } => {
            write_event_head(w, "tx", "E", e.cycle, e.block, e.warp, "stm");
            w.key("args");
            w.begin_object();
            w.field_u64("committed", committed as u64);
            w.field_u64("aborted", aborted as u64);
            w.end_object();
            w.end_object();
        }
        TxEventKind::Read { lanes } => {
            write_event_head(w, "tx-read", "i", e.cycle, e.block, e.warp, "stm");
            w.field_str("s", "t");
            w.key("args");
            w.begin_object();
            w.field_u64("lanes", lanes as u64);
            w.end_object();
            w.end_object();
        }
        TxEventKind::Write { lanes } => {
            write_event_head(w, "tx-write", "i", e.cycle, e.block, e.warp, "stm");
            w.field_str("s", "t");
            w.key("args");
            w.begin_object();
            w.field_u64("lanes", lanes as u64);
            w.end_object();
            w.end_object();
        }
        TxEventKind::Validate { checked, failed } => {
            write_event_head(w, "validate", "i", e.cycle, e.block, e.warp, "stm");
            w.field_str("s", "t");
            w.key("args");
            w.begin_object();
            w.field_u64("checked", checked as u64);
            w.field_u64("failed", failed as u64);
            w.end_object();
            w.end_object();
        }
        TxEventKind::Lock { lanes, busy } => {
            write_event_head(w, "lock", "i", e.cycle, e.block, e.warp, "stm");
            w.field_str("s", "t");
            w.key("args");
            w.begin_object();
            w.field_u64("lanes", lanes as u64);
            w.field_u64("busy", busy as u64);
            w.end_object();
            w.end_object();
        }
        TxEventKind::Conflict { stripe } => {
            write_event_head(w, "conflict", "i", e.cycle, e.block, e.warp, "stm");
            w.field_str("s", "t");
            w.key("args");
            w.begin_object();
            w.field_u64("stripe", stripe as u64);
            w.end_object();
            w.end_object();
        }
        TxEventKind::Abort { cause, lanes } => {
            let name = format!("abort:{}", cause.label());
            write_event_head(w, &name, "i", e.cycle, e.block, e.warp, "stm");
            w.field_str("s", "t");
            w.key("args");
            w.begin_object();
            w.field_u64("lanes", lanes as u64);
            w.end_object();
            w.end_object();
        }
        TxEventKind::Escalate { tid } => {
            write_event_head(w, "escalate", "i", e.cycle, e.block, e.warp, "stm");
            w.field_str("s", "t");
            w.key("args");
            w.begin_object();
            w.field_u64("tid", tid as u64);
            w.end_object();
            w.end_object();
        }
        TxEventKind::Backoff { cycles } => {
            write_event_head(w, "backoff", "X", e.cycle, e.block, e.warp, "stm");
            w.field_u64("dur", cycles);
            w.end_object();
        }
        TxEventKind::Throttle { limit } => {
            write_event_head(w, "throttle", "i", e.cycle, e.block, e.warp, "stm");
            w.field_str("s", "t");
            w.key("args");
            w.begin_object();
            w.field_u64("limit", limit as u64);
            w.end_object();
            w.end_object();
        }
        TxEventKind::Park { lanes, watched } => {
            write_event_head(w, "tx-park", "i", e.cycle, e.block, e.warp, "stm");
            w.field_str("s", "t");
            w.key("args");
            w.begin_object();
            w.field_u64("lanes", lanes as u64);
            w.field_u64("watched", watched as u64);
            w.end_object();
            w.end_object();
        }
        TxEventKind::Wake { timed_out } => {
            write_event_head(w, "tx-wake", "i", e.cycle, e.block, e.warp, "stm");
            w.field_str("s", "t");
            w.key("args");
            w.begin_object();
            w.field_u64("timed_out", timed_out as u64);
            w.end_object();
            w.end_object();
        }
        TxEventKind::SpuriousWake => {
            write_event_head(w, "tx-spurious-wake", "i", e.cycle, e.block, e.warp, "stm");
            w.field_str("s", "t");
            w.end_object();
        }
    }
}

/// Renders merged simulator and transaction event streams as Chrome
/// trace-event JSON (load at <https://ui.perfetto.dev> or
/// `chrome://tracing`).
///
/// Layout: one *process* per thread block, one *thread* track per warp.
/// Warp residency (`warp`) and transaction attempts (`tx`) are nested
/// B/E slices; memory operations, validation steps, lock rounds, aborts
/// and conflicts are thread-scoped instants; idle and backoff spans are
/// complete (`X`) slices with a duration. Timestamps are simulated
/// cycles (the `ts` microsecond unit is reinterpreted; only relative
/// placement matters).
///
/// Both inputs must be cycle-ordered (buffers fill in event-loop order);
/// the merge is stable with simulator events first on ties, so output is
/// byte-deterministic for a deterministic run — the golden test pins it.
pub fn chrome_trace(sim: &[SimEvent], tx: &[TxEvent]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("traceEvents");
    w.begin_array();

    // Metadata: name the per-block processes so Perfetto groups tracks.
    let blocks: BTreeSet<u32> =
        sim.iter().map(|e| e.block).chain(tx.iter().map(|e| e.block)).collect();
    for b in blocks {
        w.begin_object();
        w.field_str("name", "process_name");
        w.field_str("ph", "M");
        w.field_u64("pid", b as u64);
        w.key("args");
        w.begin_object();
        w.field_str("name", &format!("block {b}"));
        w.end_object();
        w.end_object();
    }

    let (mut i, mut j) = (0usize, 0usize);
    while i < sim.len() || j < tx.len() {
        let take_sim = match (sim.get(i), tx.get(j)) {
            (Some(s), Some(t)) => s.cycle <= t.cycle,
            (Some(_), None) => true,
            _ => false,
        };
        if take_sim {
            write_sim_event(&mut w, &sim[i]);
            i += 1;
        } else {
            write_tx_event(&mut w, &tx[j]);
            j += 1;
        }
    }

    w.end_array();
    w.field_str("displayTimeUnit", "ns");
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(cycle: u64, kind: TxEventKind) -> TxEvent {
        TxEvent { cycle, block: 0, warp: 1, kind }
    }

    #[test]
    fn ring_buffer_bounds() {
        let mut b = TxTraceBuffer::new(2);
        for c in 0..5 {
            b.push(tx(c, TxEventKind::Begin { lanes: 32 }));
        }
        assert_eq!(b.len(), 2);
        assert_eq!(b.emitted(), 5);
        assert_eq!(b.dropped(), 3);
    }

    #[test]
    fn trace_off_is_noop() {
        let t = TxTrace::off();
        assert!(!t.is_on());
        // No ctx available here; emitting requires one, so just check the
        // sink plumbing.
        let sink = tx_trace_sink(8);
        let t = TxTrace::to(Rc::clone(&sink));
        assert!(t.is_on());
    }

    #[test]
    fn chrome_trace_shape() {
        let sim = vec![
            SimEvent { cycle: 0, block: 0, warp: 0, kind: SimEventKind::WarpStart },
            SimEvent { cycle: 9, block: 0, warp: 0, kind: SimEventKind::Fence },
            SimEvent { cycle: 30, block: 0, warp: 0, kind: SimEventKind::WarpRetire },
        ];
        let txe = vec![
            tx(5, TxEventKind::Begin { lanes: 32 }),
            tx(9, TxEventKind::Abort { cause: AbortCause::LockBusy, lanes: 2 }),
            tx(20, TxEventKind::Commit { committed: 30, aborted: 2 }),
        ];
        let json = chrome_trace(&sim, &txe);
        assert!(json.starts_with(r#"{"traceEvents":[{"name":"process_name""#), "{json}");
        assert!(json.contains(r#""name":"tx","cat":"stm","ph":"B","ts":5"#), "{json}");
        assert!(json.contains(r#""name":"abort:lock-busy""#), "{json}");
        assert!(json.contains(r#""committed":30,"aborted":2"#), "{json}");
        assert!(json.ends_with(r#"],"displayTimeUnit":"ns"}"#), "{json}");
        // Tie at cycle 9: the simulator fence precedes the tx abort.
        let fence = json.find(r#""name":"fence""#).unwrap();
        let abort = json.find(r#""name":"abort:lock-busy""#).unwrap();
        assert!(fence < abort);
    }

    #[test]
    fn chrome_trace_empty_inputs() {
        let json = chrome_trace(&[], &[]);
        assert_eq!(json, r#"{"traceEvents":[],"displayTimeUnit":"ns"}"#);
    }
}
