//! Contention profiling over a transaction event stream.
//!
//! [`ContentionProfile`] folds a [`TxEvent`](crate::trace::TxEvent)
//! stream into the two aggregates the telemetry layer reports:
//!
//! - **per-stripe conflict counts** — how many times each lock-table
//!   stripe was observed busy (`Conflict` events), identifying hot
//!   addresses/stripes;
//! - **abort-cause time series** — abort lane-counts per
//!   [`AbortCause`], bucketed over the run's cycle range, showing *when*
//!   contention happened, not just how much.
//!
//! Both render as a terminal heatmap ([`ContentionProfile::heatmap`])
//! and as a machine-readable JSON report
//! ([`ContentionProfile::to_json`], stable field order).

use crate::stats::ABORT_CAUSES;
use crate::trace::{TxEvent, TxEventKind};
use gpu_sim::json::JsonWriter;
use std::collections::BTreeMap;

/// Number of time buckets the cycle range is divided into.
pub const TIME_BUCKETS: usize = 32;

/// Aggregated contention statistics from one run's event stream.
#[derive(Clone, Debug, Default)]
pub struct ContentionProfile {
    /// Busy-lock observations per stripe, keyed by stripe index
    /// (deterministic iteration order).
    pub stripe_conflicts: BTreeMap<u32, u64>,
    /// Conflict observations per stripe per time bucket.
    stripe_series: BTreeMap<u32, [u64; TIME_BUCKETS]>,
    /// Aborted lanes per cause per time bucket (indexed by
    /// [`AbortCause::index`]).
    pub abort_series: [[u64; TIME_BUCKETS]; ABORT_CAUSES.len()],
    /// Total aborted lanes per cause.
    pub abort_totals: [u64; ABORT_CAUSES.len()],
    /// First event cycle (0 when the stream was empty).
    pub first_cycle: u64,
    /// Last event cycle.
    pub last_cycle: u64,
    /// Number of events folded in.
    pub events: u64,
}

impl ContentionProfile {
    /// Builds a profile from a cycle-ordered event stream (e.g. a
    /// [`TxTraceBuffer::snapshot`](crate::trace::TxTraceBuffer::snapshot)).
    pub fn from_events(events: &[TxEvent]) -> Self {
        let mut p = ContentionProfile::default();
        if events.is_empty() {
            return p;
        }
        p.first_cycle = events.iter().map(|e| e.cycle).min().unwrap_or(0);
        p.last_cycle = events.iter().map(|e| e.cycle).max().unwrap_or(0);
        let span = (p.last_cycle - p.first_cycle).max(1);
        for e in events {
            p.events += 1;
            let bucket = (((e.cycle - p.first_cycle) * TIME_BUCKETS as u64) / (span + 1))
                .min(TIME_BUCKETS as u64 - 1) as usize;
            match e.kind {
                TxEventKind::Conflict { stripe } => {
                    *p.stripe_conflicts.entry(stripe).or_insert(0) += 1;
                    p.stripe_series.entry(stripe).or_insert([0; TIME_BUCKETS])[bucket] += 1;
                }
                TxEventKind::Abort { cause, lanes } => {
                    p.abort_series[cause.index()][bucket] += lanes as u64;
                    p.abort_totals[cause.index()] += lanes as u64;
                }
                _ => {}
            }
        }
        p
    }

    /// Total busy-lock observations across all stripes.
    pub fn total_conflicts(&self) -> u64 {
        self.stripe_conflicts.values().sum()
    }

    /// Total aborted lanes across all causes.
    pub fn total_aborts(&self) -> u64 {
        self.abort_totals.iter().sum()
    }

    /// The `n` most-contended stripes, hottest first (ties broken by
    /// stripe index for determinism).
    pub fn hottest_stripes(&self, n: usize) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self.stripe_conflicts.iter().map(|(&s, &c)| (s, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    fn intensity(count: u64, max: u64) -> char {
        const RAMP: [char; 6] = [' ', '.', ':', '+', '#', '@'];
        if count == 0 || max == 0 {
            return RAMP[0];
        }
        let i = 1 + (count * (RAMP.len() as u64 - 2) / max) as usize;
        RAMP[i.min(RAMP.len() - 1)]
    }

    /// Renders a terminal heatmap: one row per hot stripe (top `rows`)
    /// and one per abort cause, columns = [`TIME_BUCKETS`] slices of the
    /// run's cycle range, intensity ramp ` .:+#@`.
    pub fn heatmap(&self, rows: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "contention heatmap  cycles {}..{}  ({} events, {} conflicts, {} aborted lanes)\n",
            self.first_cycle,
            self.last_cycle,
            self.events,
            self.total_conflicts(),
            self.total_aborts(),
        ));
        out.push_str(&format!("time -> {} buckets, ramp ' .:+#@'\n", TIME_BUCKETS));
        let hot = self.hottest_stripes(rows);
        if hot.is_empty() {
            out.push_str("  (no lock-stripe conflicts observed)\n");
        }
        for (stripe, total) in &hot {
            let series = self.stripe_series.get(stripe).expect("hot stripe has a series");
            let max = series.iter().copied().max().unwrap_or(0);
            let row: String = series.iter().map(|&c| Self::intensity(c, max)).collect();
            out.push_str(&format!("  stripe {stripe:>6} |{row}| {total}\n"));
        }
        for cause in ABORT_CAUSES {
            let series = &self.abort_series[cause.index()];
            let total = self.abort_totals[cause.index()];
            if total == 0 {
                continue;
            }
            let max = series.iter().copied().max().unwrap_or(0);
            let row: String = series.iter().map(|&c| Self::intensity(c, max)).collect();
            out.push_str(&format!("  {:>13} |{row}| {total}\n", cause.label()));
        }
        out
    }

    /// Serializes the profile into `w` as a JSON object with a stable
    /// field order.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_u64("first_cycle", self.first_cycle);
        w.field_u64("last_cycle", self.last_cycle);
        w.field_u64("events", self.events);
        w.field_u64("total_conflicts", self.total_conflicts());
        w.field_u64("total_aborted_lanes", self.total_aborts());
        w.key("stripe_conflicts");
        w.begin_array();
        for (&stripe, &count) in &self.stripe_conflicts {
            w.begin_object();
            w.field_u64("stripe", stripe as u64);
            w.field_u64("conflicts", count);
            w.end_object();
        }
        w.end_array();
        w.key("abort_causes");
        w.begin_object();
        for cause in ABORT_CAUSES {
            w.key(cause.label());
            w.begin_object();
            w.field_u64("total_lanes", self.abort_totals[cause.index()]);
            w.key("series");
            w.begin_array();
            for &c in &self.abort_series[cause.index()] {
                w.u64(c);
            }
            w.end_array();
            w.end_object();
        }
        w.end_object();
        w.end_object();
    }

    /// The JSON report as a standalone string.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::AbortCause;

    fn ev(cycle: u64, kind: TxEventKind) -> TxEvent {
        TxEvent { cycle, block: 0, warp: 0, kind }
    }

    #[test]
    fn empty_stream_profiles_cleanly() {
        let p = ContentionProfile::from_events(&[]);
        assert_eq!(p.events, 0);
        assert_eq!(p.total_conflicts(), 0);
        assert!(p.heatmap(4).contains("no lock-stripe conflicts"));
        assert!(p.to_json().starts_with(r#"{"first_cycle":0,"#));
    }

    #[test]
    fn conflicts_and_aborts_aggregate() {
        let events = vec![
            ev(0, TxEventKind::Conflict { stripe: 7 }),
            ev(10, TxEventKind::Conflict { stripe: 7 }),
            ev(20, TxEventKind::Conflict { stripe: 3 }),
            ev(30, TxEventKind::Abort { cause: AbortCause::LockBusy, lanes: 4 }),
            ev(40, TxEventKind::Abort { cause: AbortCause::ReadValidation, lanes: 1 }),
        ];
        let p = ContentionProfile::from_events(&events);
        assert_eq!(p.total_conflicts(), 3);
        assert_eq!(p.total_aborts(), 5);
        assert_eq!(p.hottest_stripes(1), vec![(7, 2)]);
        let hm = p.heatmap(4);
        assert!(hm.contains("stripe      7"), "{hm}");
        assert!(hm.contains("lock-busy"), "{hm}");
        let json = p.to_json();
        assert!(json.contains(r#"{"stripe":3,"conflicts":1}"#), "{json}");
        assert!(json.contains(r#""lock-busy":{"total_lanes":4,"#), "{json}");
    }

    #[test]
    fn hottest_ties_break_by_stripe_index() {
        let events = vec![
            ev(0, TxEventKind::Conflict { stripe: 9 }),
            ev(1, TxEventKind::Conflict { stripe: 2 }),
        ];
        let p = ContentionProfile::from_events(&events);
        assert_eq!(p.hottest_stripes(2), vec![(2, 1), (9, 1)]);
    }
}
