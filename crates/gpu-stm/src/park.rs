//! Blocking transactions: `retry()` / `or_else` composition over any
//! [`Stm`], with an address-keyed waker registry and true descheduling.
//!
//! A transaction that finds its precondition false (an empty queue, an
//! unset flag) calls [`Blocking::retry`] instead of computing a result.
//! At [`Blocking::commit_or_park`] the runtime then *blocks* the warp:
//! it registers the transaction on every address of its validated read
//! set in a striped [`WakerRegistry`], revalidates, and parks the warp on
//! the simulator's parked set — burning **zero** cycles — until some
//! commit overwrites a watched address. The abort-respin alternative
//! (spin: abort, re-run, observe the same state) burns cycles linearly in
//! the wait; the parked path shows up in the Figure-5-style breakdown as
//! [`Phase::Parked`] instead of `Aborted`.
//!
//! ## The lost-wakeup problem
//!
//! The wake path is commit-driven: [`Blocking::commit_or_park`] (and the
//! plain [`Stm::commit`] of the wrapper) notifies the registry with the
//! committed write set, waking every parked transaction whose read set
//! intersects it. The classic hazard is the *lost wakeup*: a commit that
//! lands after the sleeper checked its condition but before it was
//! actually parked finds no waiter to wake, and the sleeper then parks
//! forever. The protocol here closes the window with three ordered steps
//! plus a ticket re-check:
//!
//! 1. **Snapshot** the notify tickets of the watched stripes.
//! 2. **Register** in the registry (host state first, then the
//!    device-visible stripe-word bump that model checkers interleave on).
//! 3. **Revalidate** the read set (value-based); any change means the
//!    condition may already hold — respin instead of parking.
//! 4. **Re-check the tickets in the same synchronous region that arms the
//!    park request.** The executor only switches warps at `await` points,
//!    so no notify can slip between the re-check and the warp actually
//!    leaving the run queue. A notify that raced with steps 2–3 fired our
//!    wake handle while we were still runnable — a no-op by design — but
//!    it cannot have avoided bumping the ticket, so step 4 catches it.
//!
//! The deliberately broken ordering — revalidate *before* registering and
//! skip the ticket re-check — is available as
//! [`BlockingMutation::lost_wakeup`] for verifier validation: `tm-verify`
//! must find the interleaving where a commit lands in the window and the
//! sleeper parks forever (surfacing as a parked-forever deadlock).

use crate::api::{lane_addrs, Stm};
use crate::config::StmConfig;
use crate::stats::{Phase, StatsHandle};
use crate::trace::{TxEventKind, TxTrace, TxTraceSink};
use crate::validation::vbv;
use crate::warptx::WarpTx;
use gpu_sim::{
    Addr, AtomicOp, LaneAddrs, LaneMask, LaneVals, ParkOutcome, Sim, SimError, WakeHandle, WarpCtx,
    WARP_SIZE,
};
use std::cell::RefCell;
use std::rc::Rc;

/// Number of stripes in the [`WakerRegistry`]; power of two.
pub const N_STRIPES: u32 = 64;

/// Budget handed to a park that the spurious-wake fault injection picked:
/// short enough to fire before any plausible real wake.
const SPURIOUS_BUDGET: u64 = 256;

/// 64-bit finalizer (splitmix64) used for stripe hashing and the
/// deterministic spurious-wake draw.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a data address to its registry stripe.
fn stripe_of(addr: Addr) -> u32 {
    (mix64(addr.0 as u64) & (N_STRIPES as u64 - 1)) as u32
}

/// Distinct, sorted stripes touched by a set of addresses.
fn stripes_of(addrs: &[Addr]) -> Vec<u32> {
    let mut s: Vec<u32> = addrs.iter().map(|a| stripe_of(*a)).collect();
    s.sort_unstable();
    s.dedup();
    s
}

/// One registered sleeper: the addresses it watches and the handle that
/// makes its warp runnable again.
struct Waiter {
    key: u64,
    addrs: Vec<Addr>,
    stripes: Vec<u32>,
    handle: WakeHandle,
}

struct Stripe {
    /// Bumped by every notify that touches this stripe. Sleepers snapshot
    /// tickets before registering and re-check them just before parking:
    /// a changed ticket means a notify raced with their registration.
    ticket: u64,
    waiters: Vec<Rc<Waiter>>,
}

struct RegistryState {
    stripes: Vec<Stripe>,
    /// Distinct waiters currently registered (the parked-depth gauge).
    registered: usize,
    next_key: u64,
    park_seq: u64,
}

/// A striped, address-keyed registry of parked transactions.
///
/// Each waiter is indexed under every stripe its watched addresses hash
/// to; [`notify`](Self::notify) scans only the stripes of the committed
/// write set. Wake-up is *notify-all* at address granularity: every
/// waiter whose watched set intersects the written set is removed and its
/// [`WakeHandle`] fired (stripe aliasing never wakes anyone — stripes
/// only bound the scan and carry the race-detection tickets).
///
/// The registry owns `N_STRIPES` device words (one per stripe) that act
/// as *anchors* for interleaving exploration: registration atomically
/// bumps the words of its stripes, notification loads them, so a model
/// checker's conflict relation sees park/commit races even though the
/// waiter bookkeeping itself is host-side.
#[derive(Clone)]
pub struct WakerRegistry {
    words: Addr,
    st: Rc<RefCell<RegistryState>>,
}

impl std::fmt::Debug for WakerRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WakerRegistry")
            .field("parked_depth", &self.parked_depth())
            .finish_non_exhaustive()
    }
}

impl WakerRegistry {
    /// Allocates the registry's device stripe words on `sim`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] if the stripe words do not fit.
    pub fn new(sim: &mut Sim) -> Result<Self, SimError> {
        let words = sim.alloc(N_STRIPES)?;
        let stripes = (0..N_STRIPES).map(|_| Stripe { ticket: 0, waiters: Vec::new() }).collect();
        Ok(WakerRegistry {
            words,
            st: Rc::new(RefCell::new(RegistryState {
                stripes,
                registered: 0,
                next_key: 1,
                park_seq: 0,
            })),
        })
    }

    /// Device address of stripe `s`'s anchor word.
    fn word_addr(&self, s: u32) -> Addr {
        debug_assert!(s < N_STRIPES);
        self.words.offset(s)
    }

    /// Number of transactions currently registered (parked or about to
    /// park). Exported as the `parked_depth` gauge by observability
    /// layers.
    pub fn parked_depth(&self) -> usize {
        self.st.borrow().registered
    }

    /// Snapshot of the notify tickets of `stripes` (sorted, distinct).
    fn ticket_snapshot(&self, stripes: &[u32]) -> Vec<u64> {
        let st = self.st.borrow();
        stripes.iter().map(|&s| st.stripes[s as usize].ticket).collect()
    }

    /// Whether any ticket of `stripes` moved since `snap` was taken.
    fn tickets_changed(&self, stripes: &[u32], snap: &[u64]) -> bool {
        let st = self.st.borrow();
        stripes.iter().zip(snap).any(|(&s, &t0)| st.stripes[s as usize].ticket != t0)
    }

    /// Registers a waiter on `addrs` and returns its key. The caller must
    /// still bump the stripe anchor words on the device.
    fn register(&self, addrs: Vec<Addr>, handle: WakeHandle) -> u64 {
        let stripes = stripes_of(&addrs);
        let st = &mut *self.st.borrow_mut();
        let key = st.next_key;
        st.next_key += 1;
        let w = Rc::new(Waiter { key, addrs, stripes: stripes.clone(), handle });
        for s in &stripes {
            st.stripes[*s as usize].waiters.push(Rc::clone(&w));
        }
        st.registered += 1;
        key
    }

    /// Removes waiter `key` from every stripe it is indexed under.
    /// Idempotent: removing an already-notified (or never-registered) key
    /// is a no-op, so wake/unregister races are safe.
    fn unregister(&self, key: u64) -> bool {
        let st = &mut *self.st.borrow_mut();
        let mut found = false;
        for s in &mut st.stripes {
            let before = s.waiters.len();
            s.waiters.retain(|w| w.key != key);
            found |= s.waiters.len() != before;
        }
        if found {
            st.registered -= 1;
        }
        found
    }

    /// Notify-all for a committed write set: bumps the tickets of every
    /// touched stripe, removes every waiter whose watched addresses
    /// intersect `addrs`, and fires their wake handles. Returns the number
    /// of waiters woken. `addrs` must be sorted and distinct.
    pub fn notify(&self, addrs: &[Addr]) -> usize {
        let stripes = stripes_of(addrs);
        let mut woken: Vec<Rc<Waiter>> = Vec::new();
        {
            let st = &mut *self.st.borrow_mut();
            for &s in &stripes {
                st.stripes[s as usize].ticket += 1;
                for w in &st.stripes[s as usize].waiters {
                    if woken.iter().any(|x| x.key == w.key) {
                        continue;
                    }
                    if w.addrs.iter().any(|a| addrs.binary_search_by_key(&a.0, |x| x.0).is_ok()) {
                        woken.push(Rc::clone(w));
                    }
                }
            }
            for w in &woken {
                for &s in &w.stripes {
                    st.stripes[s as usize].waiters.retain(|x| x.key != w.key);
                }
                st.registered -= 1;
            }
        }
        // Handles fire outside the registry borrow: a wake enqueue only
        // touches the executor's wake queue, but keeping the borrow
        // windows disjoint is cheap insurance.
        for w in &woken {
            w.handle.wake();
        }
        woken.len()
    }

    /// Monotonic sequence for the deterministic spurious-wake draw.
    fn next_park_seq(&self) -> u64 {
        let st = &mut *self.st.borrow_mut();
        st.park_seq += 1;
        st.park_seq
    }
}

/// Deliberately seeded blocking bugs, used to validate the verifier (see
/// [`Mutation`](crate::Mutation) for the commit-path equivalents).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BlockingMutation {
    /// Revalidate *before* registering in the waker registry and skip the
    /// pre-park ticket re-check — the textbook lost-wakeup window. A
    /// commit that lands between the revalidation and the registration
    /// finds no waiter to wake, and the sleeper parks forever; under the
    /// right interleaving the run ends in a parked-forever deadlock that
    /// `tm-verify` must reach and minimize.
    pub lost_wakeup: bool,
}

impl BlockingMutation {
    /// True when any mutation is enabled.
    pub fn any(&self) -> bool {
        self.lost_wakeup
    }
}

/// Resolution of one [`Blocking::commit_or_park`] call, per lane.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TxOutcome {
    /// Lanes whose transaction committed.
    pub committed: LaneMask,
    /// Lanes that aborted (or fell back from an ineligible `retry()`) and
    /// must re-run their transaction.
    pub aborted: LaneMask,
    /// Lanes that parked on their read set and have since been woken (or
    /// timed out): the watched state may have changed, so they must
    /// re-run their transaction. Unlike `aborted` these lanes burned
    /// ~zero cycles while waiting and are *not* counted as aborts.
    pub parked: LaneMask,
}

impl TxOutcome {
    /// Lanes that must re-run their transaction.
    pub fn respin(&self) -> LaneMask {
        self.aborted | self.parked
    }
}

/// Wrapper adding blocking (`retry` / `or_else` / park) semantics to any
/// [`Stm`]. All commits routed through the wrapper — [`Stm::commit`] and
/// [`commit_or_park`](Self::commit_or_park) alike — notify the
/// [`WakerRegistry`] with their committed write set, so sleepers are
/// woken whichever path the writer took.
#[derive(Clone)]
pub struct Blocking<S> {
    inner: S,
    registry: WakerRegistry,
    max_parked: u32,
    budget: u64,
    spurious_rate: u32,
    park: bool,
    trace: TxTrace,
    mutation: BlockingMutation,
}

impl<S: std::fmt::Debug> std::fmt::Debug for Blocking<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Blocking")
            .field("inner", &self.inner)
            .field("park", &self.park)
            .finish_non_exhaustive()
    }
}

impl<S: Stm> Blocking<S> {
    /// Wraps `inner`, allocating the waker registry's device anchor words
    /// on `sim`. The park knobs (`max_parked_per_warp`,
    /// `park_budget_cycles`, `spurious_wake_rate`) are taken from `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadLaunch`] for an invalid `cfg` and
    /// [`SimError::OutOfMemory`] if the anchor words do not fit.
    pub fn new(sim: &mut Sim, inner: S, cfg: &StmConfig) -> Result<Self, SimError> {
        cfg.validate().map_err(|e| SimError::BadLaunch(format!("invalid StmConfig: {e}")))?;
        Ok(Blocking {
            inner,
            registry: WakerRegistry::new(sim)?,
            max_parked: cfg.max_parked_per_warp,
            budget: cfg.park_budget_cycles,
            spurious_rate: cfg.spurious_wake_rate,
            park: true,
            trace: TxTrace::off(),
            mutation: BlockingMutation::default(),
        })
    }

    /// Disables parking: `retry()` degrades to abort-respin. This is the
    /// baseline the benches compare against — identical workload, the
    /// waiting lanes just spin through aborts instead of descheduling.
    pub fn without_park(mut self) -> Self {
        self.park = false;
        self
    }

    /// Attaches a transaction-lifecycle trace sink for the park/wake
    /// events (the inner STM keeps its own sink for begin/commit/abort).
    pub fn with_trace(mut self, sink: TxTraceSink) -> Self {
        self.trace = TxTrace::to(sink);
        self
    }

    /// Seeds a correctness [`BlockingMutation`] — verifier-validation use
    /// only.
    #[cfg(any(test, feature = "mutants"))]
    pub fn with_mutation(mut self, mutation: BlockingMutation) -> Self {
        self.mutation = mutation;
        self
    }

    /// The seeded mutation (all-off in production builds).
    pub fn mutation(&self) -> BlockingMutation {
        self.mutation
    }

    /// The wrapped runtime.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The waker registry (for gauges such as
    /// [`parked_depth`](WakerRegistry::parked_depth)).
    pub fn registry(&self) -> &WakerRegistry {
        &self.registry
    }

    /// Declares that the lanes of `lanes` found their precondition false:
    /// at [`commit_or_park`](Self::commit_or_park) they will block until
    /// an address of their read set is overwritten, instead of
    /// committing. A subsequent [`or_else`](Self::or_else) cancels the
    /// request and runs an alternative.
    pub fn retry(&self, w: &mut WarpTx, lanes: LaneMask) {
        w.retrying |= lanes;
    }

    /// `or_else` composition: cancels a pending `retry()` on `lanes` so
    /// an alternative branch can run in the *same* transaction. The
    /// abandoned branch's buffered writes are discarded; its **reads are
    /// kept** — the alternative's consistency (and any later park's
    /// watch set) covers the addresses whose values routed control flow
    /// away from the first branch. Returns the lanes that actually had a
    /// pending retry.
    pub fn or_else(&self, w: &mut WarpTx, lanes: LaneMask) -> LaneMask {
        let taken = w.retrying & lanes;
        w.retrying &= !taken;
        for l in taken.iter() {
            w.writes.clear_lane(l);
        }
        taken
    }

    /// Commit with blocking semantics: non-retrying lanes commit (and
    /// notify sleepers); retrying lanes park on their validated read set
    /// until a commit overwrites a watched address. Lanes return in
    /// exactly one of the three [`TxOutcome`] masks.
    ///
    /// A retry lane falls back to abort-respin (the `aborted` mask)
    /// instead of parking when it is doomed (non-opaque), its read set is
    /// empty (nothing to watch — statically unwakeable) or larger than
    /// `max_parked_per_warp`, parking is disabled, or a same-warp lane
    /// needs to respin (a warp parks as a unit, so one respinning lane
    /// keeps the whole warp runnable).
    pub async fn commit_or_park(&self, w: &mut WarpTx, ctx: &WarpCtx, mask: LaneMask) -> TxOutcome {
        let retrying = w.retrying & mask;
        w.retrying &= !retrying;
        let committing = mask & !retrying;
        let committed = self.do_commit(w, ctx, committing).await;
        let mut aborted = committing & !committed;

        if retrying.none() {
            return TxOutcome { committed, aborted, parked: LaneMask::EMPTY };
        }

        // Doomed retry lanes observed an inconsistent snapshot: their
        // precondition was computed from garbage, so they respin (their
        // abort was already recorded at read time).
        let doomed = retrying & !w.opaque;
        let mut eligible = retrying & !doomed;

        // Nothing to watch, or too much: fall back to abort-respin.
        let fallback = eligible.filter(|l| {
            let n = w.reads.len(l);
            n == 0 || n > self.max_parked as usize
        });
        eligible &= !fallback;

        let mut respin = doomed | fallback;
        // One respinning lane keeps the warp runnable; parking the
        // eligible lanes anyway would deschedule it. Respin everyone —
        // semantically a spurious wake, which callers must tolerate.
        if !self.park || aborted.any() || respin.any() {
            respin |= eligible;
            eligible = LaneMask::EMPTY;
        }
        for l in respin.iter() {
            w.reset_lane(l);
        }
        aborted |= respin;

        let parked = if eligible.any() {
            let (parked, pre_respin) = self.park_lanes(w, ctx, eligible).await;
            aborted |= pre_respin;
            parked
        } else {
            LaneMask::EMPTY
        };

        // Drain the wait span (and any straggler native time) into the
        // breakdown. Retry respins are voluntary, not aborts, so they do
        // not enter the proportional committed/aborted split.
        {
            let st = self.inner.stats();
            let mut st = st.borrow_mut();
            w.flush_attempt(&mut st.breakdown, 0, 0);
        }
        TxOutcome { committed, aborted, parked }
    }

    /// Commit plus sleeper notification (the wrapper's [`Stm::commit`]).
    async fn do_commit(&self, w: &mut WarpTx, ctx: &WarpCtx, mask: LaneMask) -> LaneMask {
        if mask.none() {
            return LaneMask::EMPTY;
        }
        // Capture write addresses up front: a successful commit resets
        // its lanes, taking the write-set with it.
        let captured: Vec<(usize, Vec<Addr>)> =
            mask.iter().map(|l| (l, w.writes.iter_lane(l).map(|e| e.addr).collect())).collect();
        let committed = self.inner.commit(w, ctx, mask).await;
        if committed.none() {
            return committed;
        }
        let mut addrs: Vec<Addr> = captured
            .into_iter()
            .filter(|(l, _)| committed.contains(*l))
            .flat_map(|(_, a)| a)
            .collect();
        addrs.sort_unstable_by_key(|a| a.0);
        addrs.dedup();
        if addrs.is_empty() {
            return committed; // read-only commits wake nobody
        }

        // Host-side delivery happens *before* the anchor's yield point:
        // by the time any other warp runs, the registry already reflects
        // this notify.
        self.registry.notify(&addrs);

        // Device anchor: load the touched stripe words. The Load
        // conflicts with the register path's Atomic bump, making the
        // park/commit race visible to interleaving exploration.
        let stripes = stripes_of(&addrs);
        for chunk in stripes.chunks(WARP_SIZE) {
            let m = LaneMask::first_n(chunk.len());
            let a = lane_addrs(m, |l| self.registry.word_addr(chunk[l]));
            let _ = ctx.load(m, &a).await;
        }
        committed
    }

    /// Bumps the anchor words of `stripes` — the device-visible side of a
    /// registration.
    async fn anchor_register(&self, ctx: &WarpCtx, stripes: &[u32]) {
        for chunk in stripes.chunks(WARP_SIZE) {
            let m = LaneMask::first_n(chunk.len());
            let a = lane_addrs(m, |l| self.registry.word_addr(chunk[l]));
            let ones = [1u32; WARP_SIZE];
            ctx.atomic_rmw(m, AtomicOp::Add, &a, &ones).await;
        }
    }

    /// Parks `lanes` (all opaque, non-empty read sets) until a watched
    /// address is overwritten. Returns `(parked, respun)`: lanes that
    /// actually slept and were woken, and lanes returned unslept because
    /// the pre-park revalidation or ticket re-check saw the condition
    /// already signalled. Both sets are reset for their respin.
    async fn park_lanes(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        lanes: LaneMask,
    ) -> (LaneMask, LaneMask) {
        // The warp-wide watch set: the union of the parking lanes' read
        // sets. Any watched write wakes the warp; each lane then respins
        // and re-checks its own precondition.
        let mut watched: Vec<Addr> = lanes
            .iter()
            .flat_map(|l| w.reads.iter_lane(l).map(|e| e.addr).collect::<Vec<_>>())
            .collect();
        watched.sort_unstable_by_key(|a| a.0);
        watched.dedup();
        let stripes = stripes_of(&watched);
        let handle = ctx.wake_handle();
        let seed = ctx.id().thread_id(lanes.leader().unwrap_or(0)) as u64;

        loop {
            let key;
            if self.mutation.lost_wakeup {
                // MUTANT: revalidate first, register second, park with no
                // ticket re-check. A commit landing between the two steps
                // wakes nobody — the lost-wakeup window tm-verify must hit.
                w.enter_phase(ctx.now(), Phase::Consistency);
                let failed = vbv(w, ctx, lanes).await;
                w.enter_phase(ctx.now(), Phase::Native);
                if failed.any() {
                    for l in lanes.iter() {
                        w.reset_lane(l);
                    }
                    return (LaneMask::EMPTY, lanes);
                }
                key = self.registry.register(watched.clone(), handle.clone());
                self.anchor_register(ctx, &stripes).await;
            } else {
                // 1. Snapshot the notify tickets of the watched stripes.
                let snap = self.registry.ticket_snapshot(&stripes);
                // 2. Register (host), then bump the anchors (device).
                key = self.registry.register(watched.clone(), handle.clone());
                self.anchor_register(ctx, &stripes).await;
                // 3. Revalidate: a changed read means the precondition may
                //    already hold — respin instead of sleeping on it.
                w.enter_phase(ctx.now(), Phase::Consistency);
                let failed = vbv(w, ctx, lanes).await;
                w.enter_phase(ctx.now(), Phase::Native);
                if failed.any() {
                    self.registry.unregister(key);
                    for l in lanes.iter() {
                        w.reset_lane(l);
                    }
                    return (LaneMask::EMPTY, lanes);
                }
                // 4. Ticket re-check, in the same synchronous region that
                //    arms the park below (no await separates them): any
                //    notify that raced with steps 2–3 bumped a ticket.
                if self.registry.tickets_changed(&stripes, &snap) {
                    self.registry.unregister(key);
                    for l in lanes.iter() {
                        w.reset_lane(l);
                    }
                    return (LaneMask::EMPTY, lanes);
                }
            }

            // Spurious-wake fault injection: a per-mille draw swaps in a
            // budget short enough to fire before any plausible real wake.
            let budget = if self.spurious_rate > 0
                && mix64(seed ^ self.registry.next_park_seq().wrapping_mul(0x517c_c1b7_2722_0a95))
                    % 1000
                    < self.spurious_rate as u64
            {
                SPURIOUS_BUDGET
            } else {
                self.budget
            };

            {
                let st = self.inner.stats();
                st.borrow_mut().parks += lanes.count() as u64;
            }
            self.trace.emit(
                ctx,
                TxEventKind::Park { lanes: lanes.count(), watched: watched.len() as u32 },
            );
            w.enter_phase(ctx.now(), Phase::Parked);
            let outcome = ctx.park(lanes, &watched, budget).await;
            w.enter_phase(ctx.now(), Phase::Native);
            {
                let st = self.inner.stats();
                st.borrow_mut().wakes += lanes.count() as u64;
            }
            self.trace.emit(ctx, TxEventKind::Wake { timed_out: outcome == ParkOutcome::TimedOut });

            match outcome {
                ParkOutcome::Woken => {
                    // The notify that woke us already removed the
                    // registration; the extra unregister is an idempotent
                    // no-op kept for the mutant path.
                    self.registry.unregister(key);
                    for l in lanes.iter() {
                        w.reset_lane(l);
                    }
                    return (lanes, LaneMask::EMPTY);
                }
                ParkOutcome::TimedOut => {
                    self.registry.unregister(key);
                    // Budget expired (or injected spurious wake): if the
                    // watched values changed we treat it as a late wake;
                    // otherwise count a spurious wake and go back to sleep.
                    w.enter_phase(ctx.now(), Phase::Consistency);
                    let failed = vbv(w, ctx, lanes).await;
                    w.enter_phase(ctx.now(), Phase::Native);
                    if failed.any() {
                        for l in lanes.iter() {
                            w.reset_lane(l);
                        }
                        return (lanes, LaneMask::EMPTY);
                    }
                    {
                        let st = self.inner.stats();
                        st.borrow_mut().spurious_wakes += lanes.count() as u64;
                    }
                    self.trace.emit(ctx, TxEventKind::SpuriousWake);
                    // Loop: re-register and re-park.
                }
            }
        }
    }
}

impl<S: Stm> Stm for Blocking<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn new_warp(&self) -> WarpTx {
        self.inner.new_warp()
    }

    fn stats(&self) -> StatsHandle {
        self.inner.stats()
    }

    async fn begin(&self, w: &mut WarpTx, ctx: &WarpCtx, want: LaneMask) -> LaneMask {
        self.inner.begin(w, ctx, want).await
    }

    async fn read(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
    ) -> LaneVals {
        self.inner.read(w, ctx, mask, addrs).await
    }

    async fn write(
        &self,
        w: &mut WarpTx,
        ctx: &WarpCtx,
        mask: LaneMask,
        addrs: &LaneAddrs,
        vals: &LaneVals,
    ) {
        self.inner.write(w, ctx, mask, addrs, vals).await
    }

    /// Plain commit — still notifies sleepers, so writers that never
    /// block themselves participate in the wake protocol. Kernels that
    /// call [`Blocking::retry`] must resolve it through
    /// [`Blocking::commit_or_park`]; this entry point ignores pending
    /// retry marks.
    async fn commit(&self, w: &mut WarpTx, ctx: &WarpCtx, mask: LaneMask) -> LaneMask {
        self.do_commit(w, ctx, mask).await
    }

    fn abort_storm(&self) -> bool {
        self.inner.abort_storm()
    }

    fn abort_permille(&self) -> u32 {
        self.inner.abort_permille()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::StmShared;
    use crate::variants::LockStm;
    use gpu_sim::{LaunchConfig, Sim, SimConfig};

    fn setup(cfg: &StmConfig) -> (Sim, Blocking<LockStm>) {
        let mut sim = Sim::new(SimConfig::with_memory(1 << 16));
        let shared = StmShared::init(&mut sim, cfg).unwrap();
        let stm = Blocking::new(&mut sim, LockStm::hv_sorting(shared, *cfg), cfg).unwrap();
        (sim, stm)
    }

    fn small_cfg() -> StmConfig {
        StmConfig::new(1 << 8)
    }

    /// Warp 0 lane 0 blocks until `flag` is non-zero, then writes
    /// `flag + 41` to `out`; warp 1 lane 0 sets the flag after a delay.
    fn producer_consumer(stm: &Blocking<LockStm>, sim: &mut Sim) -> (Addr, Addr, u64) {
        let flag = sim.alloc(1).unwrap();
        let out = sim.alloc(1).unwrap();
        let stm = stm.clone();
        let report = sim
            .launch(LaunchConfig::new(1, 64), move |ctx| {
                let stm = stm.clone();
                async move {
                    let mut w = stm.new_warp();
                    let lane = 0usize;
                    let m = LaneMask::lane(lane);
                    if ctx.id().warp_in_block == 0 {
                        let mut pending = m;
                        while pending.any() {
                            let active = stm.begin(&mut w, &ctx, pending).await;
                            let v = stm.read_one(&mut w, &ctx, lane, flag).await;
                            if v == 0 {
                                stm.retry(&mut w, m);
                            } else {
                                stm.write_one(&mut w, &ctx, lane, out, v + 41).await;
                            }
                            let o = stm.commit_or_park(&mut w, &ctx, active).await;
                            pending &= !o.committed;
                        }
                    } else {
                        ctx.idle(3000).await;
                        let mut pending = m;
                        while pending.any() {
                            let active = stm.begin(&mut w, &ctx, pending).await;
                            stm.write_one(&mut w, &ctx, lane, flag, 1).await;
                            let o = stm.commit_or_park(&mut w, &ctx, active).await;
                            pending &= !o.committed;
                        }
                    }
                }
            })
            .unwrap();
        (flag, out, report.stats.parks)
    }

    #[test]
    fn blocked_consumer_wakes_on_producer_commit() {
        let cfg = small_cfg();
        let (mut sim, stm) = setup(&cfg);
        let (flag, out, sim_parks) = producer_consumer(&stm, &mut sim);
        assert_eq!(sim.read(flag), 1);
        assert_eq!(sim.read(out), 42);
        assert!(sim_parks >= 1, "consumer never parked");
        let st = stm.stats();
        let st = st.borrow();
        assert!(st.parks >= 1, "tx parks not counted");
        assert_eq!(st.parks, st.wakes, "every park must resolve in a wake");
        assert_eq!(st.spurious_wakes, 0);
        assert_eq!(stm.registry().parked_depth(), 0, "registry must drain");
    }

    #[test]
    fn parked_consumer_burns_fewer_cycles_than_respin_baseline() {
        let cfg = small_cfg();
        let run = |park: bool| {
            let (mut sim, stm) = setup(&cfg);
            let stm = if park { stm } else { stm.without_park() };
            producer_consumer(&stm, &mut sim);
            let st = stm.stats();
            let st = st.borrow();
            let parked = st.breakdown.get(Phase::Parked);
            let aborted = st.breakdown.get(Phase::Aborted);
            (st.parks, st.aborts, parked, aborted)
        };
        let (parks, _, parked_cycles, _) = run(true);
        let (baseline_parks, _, _, _) = run(false);
        assert!(parks >= 1);
        assert_eq!(baseline_parks, 0, "baseline must never park");
        assert!(parked_cycles > 0.0, "the wait must be attributed to the Parked phase");
    }

    #[test]
    fn empty_read_set_retry_falls_back_to_abort_respin() {
        let cfg = small_cfg();
        let (mut sim, stm) = setup(&cfg);
        let probe = sim.alloc(1).unwrap();
        let k = stm.clone();
        sim.launch(LaunchConfig::new(1, 32), move |ctx| {
            let stm = k.clone();
            async move {
                let mut w = stm.new_warp();
                let m = LaneMask::lane(0);
                let active = stm.begin(&mut w, &ctx, m).await;
                stm.retry(&mut w, m); // nothing read: unwakeable
                let o = stm.commit_or_park(&mut w, &ctx, active).await;
                assert_eq!(o.aborted, m, "empty read set must fall back");
                assert_eq!(o.parked, LaneMask::EMPTY);
                // The lane can immediately run a normal transaction.
                let active = stm.begin(&mut w, &ctx, m).await;
                stm.write_one(&mut w, &ctx, 0, probe, 9).await;
                let o = stm.commit_or_park(&mut w, &ctx, active).await;
                assert_eq!(o.committed, m);
            }
        })
        .unwrap();
        assert_eq!(sim.read(probe), 9);
        assert_eq!(stm.stats().borrow().parks, 0);
    }

    #[test]
    fn oversized_read_set_falls_back() {
        let mut cfg = small_cfg();
        cfg.max_parked_per_warp = 2;
        let (mut sim, stm) = setup(&cfg);
        let buf = sim.alloc(4).unwrap();
        let k = stm.clone();
        sim.launch(LaunchConfig::new(1, 32), move |ctx| {
            let stm = k.clone();
            async move {
                let mut w = stm.new_warp();
                let m = LaneMask::lane(0);
                let active = stm.begin(&mut w, &ctx, m).await;
                for i in 0..3 {
                    let _ = stm.read_one(&mut w, &ctx, 0, buf.offset(i)).await;
                }
                stm.retry(&mut w, m);
                let o = stm.commit_or_park(&mut w, &ctx, active).await;
                assert_eq!(o.aborted, m, "3 reads > max_parked_per_warp=2");
            }
        })
        .unwrap();
        assert_eq!(stm.stats().borrow().parks, 0);
    }

    #[test]
    fn or_else_runs_alternative_and_discards_first_branch_writes() {
        let cfg = small_cfg();
        let (mut sim, stm) = setup(&cfg);
        let gate = sim.alloc(1).unwrap(); // stays 0: first branch blocked
        let a = sim.alloc(1).unwrap();
        let b = sim.alloc(1).unwrap();
        let k = stm.clone();
        sim.launch(LaunchConfig::new(1, 32), move |ctx| {
            let stm = k.clone();
            async move {
                let mut w = stm.new_warp();
                let m = LaneMask::lane(0);
                let active = stm.begin(&mut w, &ctx, m).await;
                // First alternative: needs the gate open.
                let g = stm.read_one(&mut w, &ctx, 0, gate).await;
                stm.write_one(&mut w, &ctx, 0, a, 1).await; // speculative
                if g == 0 {
                    stm.retry(&mut w, m);
                }
                // Second alternative: unconditional.
                let took = stm.or_else(&mut w, m);
                assert_eq!(took, m);
                stm.write_one(&mut w, &ctx, 0, b, 7).await;
                let o = stm.commit_or_park(&mut w, &ctx, active).await;
                assert_eq!(o.committed, m);
            }
        })
        .unwrap();
        assert_eq!(sim.read(a), 0, "first branch's write must be discarded");
        assert_eq!(sim.read(b), 7);
        assert_eq!(stm.stats().borrow().parks, 0, "or_else must prevent the park");
    }

    #[test]
    fn spurious_wakes_revalidate_and_repark_until_real_wake() {
        let mut cfg = small_cfg();
        cfg.spurious_wake_rate = 1000; // every park draws the short budget
        let (mut sim, stm) = setup(&cfg);
        let (flag, out, _) = producer_consumer(&stm, &mut sim);
        assert_eq!(sim.read(flag), 1);
        assert_eq!(sim.read(out), 42);
        let st = stm.stats();
        let st = st.borrow();
        assert!(
            st.spurious_wakes >= 1,
            "rate=1000 with a 3000-cycle producer delay must fire at least one \
             spurious wake (parks={}, wakes={})",
            st.parks,
            st.wakes
        );
        assert_eq!(st.parks, st.wakes, "every park resolves in some wake");
        assert!(st.parks >= st.spurious_wakes);
    }

    #[test]
    fn wrapper_delegates_plain_stm_surface() {
        let cfg = small_cfg();
        let (mut sim, stm) = setup(&cfg);
        assert_eq!(stm.name(), "STM-HV-Sorting");
        assert!(!stm.abort_storm());
        assert!(!stm.mutation().any());
        let cell = sim.alloc(1).unwrap();
        let k = stm.clone();
        sim.launch(LaunchConfig::new(1, 32), move |ctx| {
            let stm = k.clone();
            async move {
                let mut w = stm.new_warp();
                let m = LaneMask::lane(0);
                let active = stm.begin(&mut w, &ctx, m).await;
                let v = stm.read_one(&mut w, &ctx, 0, cell).await;
                stm.write_one(&mut w, &ctx, 0, cell, v + 5).await;
                let committed = stm.commit(&mut w, &ctx, active).await;
                assert_eq!(committed, m);
            }
        })
        .unwrap();
        assert_eq!(sim.read(cell), 5);
    }

    #[test]
    fn registry_notify_is_address_precise_not_stripe_aliased() {
        // Two addresses in the same stripe: a notify on one must not wake
        // a waiter on the other (stripes bound the scan, addresses gate
        // the wake). Find an aliasing pair by brute force.
        let mut a = Addr(1);
        let mut b = Addr(2);
        'search: for i in 1..1024u32 {
            for j in (i + 1)..1024u32 {
                if stripe_of(Addr(i)) == stripe_of(Addr(j)) {
                    a = Addr(i);
                    b = Addr(j);
                    break 'search;
                }
            }
        }
        assert_eq!(stripe_of(a), stripe_of(b));

        let cfg = small_cfg();
        let (mut sim, stm) = setup(&cfg);
        let done = Rc::new(std::cell::Cell::new(false));
        let d2 = Rc::clone(&done);
        let k = stm.clone();
        sim.launch(LaunchConfig::new(1, 32), move |ctx| {
            let stm = k.clone();
            let done = Rc::clone(&d2);
            async move {
                let reg = stm.registry().clone();
                let key = reg.register(vec![a], ctx.wake_handle());
                assert_eq!(reg.parked_depth(), 1);
                assert_eq!(reg.notify(&[b]), 0, "stripe alias must not wake");
                assert_eq!(reg.parked_depth(), 1);
                assert_eq!(reg.notify(&[a]), 1);
                assert_eq!(reg.parked_depth(), 0);
                assert!(!reg.unregister(key), "notify already removed the waiter");
                done.set(true);
            }
        })
        .unwrap();
        assert!(done.get());
    }

    #[test]
    fn mutation_gate_plumbs_through() {
        let cfg = small_cfg();
        let (_sim, stm) = setup(&cfg);
        let stm = stm.with_mutation(BlockingMutation { lost_wakeup: true });
        assert!(stm.mutation().any());
        assert!(stm.mutation().lost_wakeup);
    }
}
