//! Global (cross-transaction) STM metadata: the global clock and the
//! global lock table (Algorithm 2).

use crate::config::StmConfig;
use gpu_sim::{Addr, Sim, SimError};

/// Device addresses of the global metadata, shared by every transaction.
#[derive(Copy, Clone, Debug)]
pub struct StmShared {
    /// The global clock word (`g_clock`).
    pub clock: Addr,
    /// Base of the global lock table (`g_lockTab`), `n_locks` words.
    pub lock_tab: Addr,
    /// Lock-table size; power of two.
    pub n_locks: u32,
}

impl StmShared {
    /// Allocates and zero-initialises the global metadata on the device —
    /// the `STM_STARTUP()` of the paper's Figure 1.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadLaunch`] if the configuration fails
    /// [`StmConfig::validate`], and [`SimError::OutOfMemory`] if the lock
    /// table does not fit.
    pub fn init(sim: &mut Sim, cfg: &StmConfig) -> Result<Self, SimError> {
        cfg.validate().map_err(|e| SimError::BadLaunch(format!("invalid StmConfig: {e}")))?;
        let clock = sim.alloc(1)?;
        let lock_tab = sim.alloc(cfg.n_locks)?;
        Ok(StmShared { clock, lock_tab, n_locks: cfg.n_locks })
    }

    /// Maps a data address to its global lock index — the paper's
    /// `hash(addr)`: a stripe mapping over the address bits (for a 2^20
    /// table and 32-bit byte addresses the paper takes bits 2–21; our
    /// addresses are word-granular, so the low bits index directly).
    #[inline]
    pub fn lock_index(&self, addr: Addr) -> u32 {
        addr.0 & (self.n_locks - 1)
    }

    /// Device address of lock word `idx`.
    #[inline]
    pub fn lock_addr(&self, idx: u32) -> Addr {
        debug_assert!(idx < self.n_locks);
        self.lock_tab.offset(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::SimConfig;

    #[test]
    fn init_allocates_disjoint_metadata() {
        let mut sim = Sim::new(SimConfig::with_memory(1 << 16));
        let cfg = StmConfig::new(1 << 8);
        let sh = StmShared::init(&mut sim, &cfg).unwrap();
        assert_ne!(sh.clock, sh.lock_tab);
        assert_eq!(sh.n_locks, 256);
        // Whole table addressable.
        assert_eq!(sim.read(sh.lock_addr(255)), 0);
    }

    #[test]
    fn init_rejects_invalid_config_structurally() {
        let mut sim = Sim::new(SimConfig::with_memory(1 << 16));
        let mut cfg = StmConfig::new(1 << 8);
        cfg.locklog_buckets = 3; // hand-assembled invariant break
        let err = StmShared::init(&mut sim, &cfg).unwrap_err();
        assert!(matches!(err, SimError::BadLaunch(_)), "{err:?}");
        assert!(err.to_string().contains("locklog_buckets"), "{err}");
    }

    #[test]
    fn lock_index_distributes_and_wraps() {
        let sh = StmShared { clock: Addr(0), lock_tab: Addr(32), n_locks: 16 };
        assert_eq!(sh.lock_index(Addr(5)), 5);
        assert_eq!(sh.lock_index(Addr(21)), 5); // aliases: false-conflict source
        assert_eq!(sh.lock_index(Addr(15)), 15);
    }

    #[test]
    fn aliasing_depends_on_table_size() {
        let small = StmShared { clock: Addr(0), lock_tab: Addr(32), n_locks: 4 };
        let large = StmShared { clock: Addr(0), lock_tab: Addr(32), n_locks: 1024 };
        // Two addresses that collide in the small table are distinct in the
        // large one — the false-conflict mechanism of Section 3.1.
        let (a, b) = (Addr(3), Addr(7));
        assert_eq!(small.lock_index(a), small.lock_index(b));
        assert_ne!(large.lock_index(a), large.lock_index(b));
    }
}
