//! Transaction read- and write-sets with coalesced warp-merged layout.
//!
//! Section 3.1: the read-/write-sets of the 32 transactions of a warp are
//! merged so that entry `i` of the merged set belongs to lane `i mod 32`.
//! When a warp appends one entry per active lane in lockstep, the 32 slots
//! are consecutive in memory and the bookkeeping store coalesces into a
//! single memory transaction.
//!
//! The simulator keeps log *contents* host-side for speed but mirrors the
//! layout exactly: storage grows in 32-wide strips, and the timing charge
//! for an append round is one local transaction in coalesced mode versus
//! one per lane otherwise (see [`StmConfig::coalesced_sets`]).
//!
//! [`StmConfig::coalesced_sets`]: crate::StmConfig::coalesced_sets

use gpu_sim::{Addr, WARP_SIZE};

/// One logged access: address and value.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Data address.
    pub addr: Addr,
    /// Value read from, or to be written to, `addr`.
    pub val: u32,
}

/// A warp-merged log: per-lane sequences stored in interleaved strips.
#[derive(Clone, Debug, Default)]
pub struct WarpLog {
    /// Strips of 32 entries; lane `l`'s `k`-th entry is `strips[k][l]`.
    strips: Vec<[Entry; WARP_SIZE]>,
    len: [u16; WARP_SIZE],
}

impl WarpLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        WarpLog::default()
    }

    /// Number of entries logged by `lane`.
    #[inline]
    pub fn len(&self, lane: usize) -> usize {
        self.len[lane] as usize
    }

    /// Whether `lane` has logged nothing.
    #[inline]
    pub fn is_empty(&self, lane: usize) -> bool {
        self.len[lane] == 0
    }

    /// Longest per-lane length — the number of lockstep rounds needed to
    /// walk every lane's log.
    pub fn max_len(&self) -> usize {
        self.len.iter().copied().max().unwrap_or(0) as usize
    }

    /// Appends an entry for `lane`.
    pub fn push(&mut self, lane: usize, addr: Addr, val: u32) {
        let k = self.len[lane] as usize;
        if k == self.strips.len() {
            self.strips.push([Entry { addr: Addr::NULL, val: 0 }; WARP_SIZE]);
        }
        self.strips[k][lane] = Entry { addr, val };
        self.len[lane] += 1;
    }

    /// The `k`-th entry of `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.len(lane)`.
    #[inline]
    pub fn get(&self, lane: usize, k: usize) -> Entry {
        assert!(k < self.len(lane), "log index out of range");
        self.strips[k][lane]
    }

    /// Overwrites the value of the `k`-th entry of `lane`.
    pub fn set_val(&mut self, lane: usize, k: usize, val: u32) {
        assert!(k < self.len(lane), "log index out of range");
        self.strips[k][lane].val = val;
    }

    /// Linear scan for `addr` in `lane`'s log (newest first). Returns the
    /// entry index.
    pub fn find(&self, lane: usize, addr: Addr) -> Option<usize> {
        (0..self.len(lane)).rev().find(|&k| self.strips[k][lane].addr == addr)
    }

    /// Iterates `lane`'s entries in append order.
    pub fn iter_lane(&self, lane: usize) -> impl Iterator<Item = Entry> + '_ {
        (0..self.len(lane)).map(move |k| self.strips[k][lane])
    }

    /// Clears `lane`'s log (other lanes unaffected).
    pub fn clear_lane(&mut self, lane: usize) {
        self.len[lane] = 0;
    }
}

/// A per-lane write-set: a [`WarpLog`] plus a Bloom filter per lane for the
/// read barrier's fast "have I written this address?" check
/// (Algorithm 3 line 22).
#[derive(Clone, Debug, Default)]
pub struct WriteSet {
    log: WarpLog,
    bloom: [u64; WARP_SIZE],
}

fn bloom_mask(addr: Addr) -> u64 {
    // Two independent bit positions from a 64-bit mix of the address.
    let x = (addr.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let b1 = (x >> 58) & 63;
    let b2 = (x >> 52) & 63;
    (1 << b1) | (1 << b2)
}

impl WriteSet {
    /// Creates an empty write-set.
    pub fn new() -> Self {
        WriteSet::default()
    }

    /// Underlying warp-merged log.
    pub fn log(&self) -> &WarpLog {
        &self.log
    }

    /// Number of distinct writes buffered by `lane`.
    pub fn len(&self, lane: usize) -> usize {
        self.log.len(lane)
    }

    /// Whether `lane` has buffered no writes (a read-only transaction).
    pub fn is_empty(&self, lane: usize) -> bool {
        self.log.is_empty(lane)
    }

    /// Longest per-lane write-set.
    pub fn max_len(&self) -> usize {
        self.log.max_len()
    }

    /// Buffers a write, overwriting any previous value for `addr`.
    pub fn insert(&mut self, lane: usize, addr: Addr, val: u32) {
        if let Some(k) = self.lookup_index(lane, addr) {
            self.log.set_val(lane, k, val);
        } else {
            self.log.push(lane, addr, val);
            self.bloom[lane] |= bloom_mask(addr);
        }
    }

    fn lookup_index(&self, lane: usize, addr: Addr) -> Option<usize> {
        if self.bloom[lane] & bloom_mask(addr) != bloom_mask(addr) {
            return None; // definite miss
        }
        self.log.find(lane, addr)
    }

    /// Returns the buffered value for `addr`, if `lane` wrote it.
    pub fn lookup(&self, lane: usize, addr: Addr) -> Option<u32> {
        self.lookup_index(lane, addr).map(|k| self.log.get(lane, k).val)
    }

    /// The `k`-th buffered write of `lane`.
    pub fn get(&self, lane: usize, k: usize) -> Entry {
        self.log.get(lane, k)
    }

    /// Iterates `lane`'s buffered writes in program order.
    pub fn iter_lane(&self, lane: usize) -> impl Iterator<Item = Entry> + '_ {
        self.log.iter_lane(lane)
    }

    /// Clears `lane`'s write-set and Bloom filter.
    pub fn clear_lane(&mut self, lane: usize) {
        self.log.clear_lane(lane);
        self.bloom[lane] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_append_and_get() {
        let mut l = WarpLog::new();
        l.push(3, Addr(10), 100);
        l.push(3, Addr(11), 101);
        l.push(7, Addr(20), 200);
        assert_eq!(l.len(3), 2);
        assert_eq!(l.len(7), 1);
        assert_eq!(l.len(0), 0);
        assert_eq!(l.get(3, 1), Entry { addr: Addr(11), val: 101 });
        assert_eq!(l.get(7, 0), Entry { addr: Addr(20), val: 200 });
        assert_eq!(l.max_len(), 2);
    }

    #[test]
    fn lanes_are_independent() {
        let mut l = WarpLog::new();
        for lane in 0..WARP_SIZE {
            l.push(lane, Addr(lane as u32), lane as u32 * 2);
        }
        l.clear_lane(5);
        assert!(l.is_empty(5));
        assert_eq!(l.get(6, 0).val, 12);
        assert_eq!(l.iter_lane(4).count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_past_len_panics() {
        let mut l = WarpLog::new();
        l.push(0, Addr(1), 1);
        let _ = l.get(1, 0); // lane 1 logged nothing, even though a strip exists
    }

    #[test]
    fn find_returns_latest() {
        let mut l = WarpLog::new();
        l.push(0, Addr(9), 1);
        l.push(0, Addr(8), 2);
        l.push(0, Addr(9), 3);
        assert_eq!(l.find(0, Addr(9)), Some(2));
        assert_eq!(l.find(0, Addr(7)), None);
    }

    #[test]
    fn writeset_overwrites_in_place() {
        let mut w = WriteSet::new();
        w.insert(2, Addr(100), 1);
        w.insert(2, Addr(100), 2);
        assert_eq!(w.len(2), 1);
        assert_eq!(w.lookup(2, Addr(100)), Some(2));
    }

    #[test]
    fn writeset_bloom_filters_misses() {
        let mut w = WriteSet::new();
        for i in 0..8 {
            w.insert(0, Addr(i * 3), i);
        }
        assert_eq!(w.lookup(0, Addr(6)), Some(2));
        assert_eq!(w.lookup(0, Addr(1_000_000)), None);
        assert_eq!(w.lookup(1, Addr(0)), None); // other lane unaffected
    }

    #[test]
    fn writeset_clear_resets_bloom() {
        let mut w = WriteSet::new();
        w.insert(0, Addr(5), 9);
        w.clear_lane(0);
        assert!(w.is_empty(0));
        assert_eq!(w.lookup(0, Addr(5)), None);
    }

    #[test]
    fn read_only_detection() {
        let w = WriteSet::new();
        assert!(w.is_empty(31));
    }
}
