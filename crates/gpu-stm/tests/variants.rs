//! End-to-end correctness tests: every STM variant runs real transactional
//! kernels on the simulator and must preserve the workloads' invariants.

use gpu_sim::{LaunchConfig, Sim, SimConfig, WarpCtx};
use gpu_stm::{
    lane_addrs, lane_vals, recorder, CglStm, EgpgvStm, LockStm, NorecStm, OptimizedStm, Stm,
    StmConfig, StmShared,
};
use std::rc::Rc;

fn sim(mem_words: usize) -> Sim {
    let mut cfg = SimConfig::with_memory(mem_words);
    cfg.watchdog_cycles = 1 << 32; // fail loudly on livelock
    Sim::new(cfg)
}

/// Launches a transactional kernel in which every thread increments
/// `n_incr` randomly-chosen counters from a table of `n_counters`,
/// each increment in its own transaction.
fn run_counter_kernel<S: Stm + 'static>(
    sim: &mut Sim,
    stm: Rc<S>,
    grid: LaunchConfig,
    counters: gpu_sim::Addr,
    n_counters: u32,
    n_incr: u32,
) {
    sim.launch(grid, move |ctx: WarpCtx| {
        let stm = Rc::clone(&stm);
        async move {
            let mut w = stm.new_warp();
            let mut rng = gpu_sim::WarpRng::new(0xc0ffee, ctx.id().thread_id(0));
            let launch = ctx.id().launch_mask;
            let mut remaining = [n_incr; 32];
            let mut target = [0u32; 32];
            let mut fresh = launch; // lanes that need a new random target
            loop {
                let pending = launch.filter(|l| remaining[l] > 0);
                if pending.none() {
                    break;
                }
                for l in (pending & fresh).iter() {
                    target[l] = rng.below(l, n_counters);
                }
                fresh = gpu_sim::LaneMask::EMPTY;
                let active = stm.begin(&mut w, &ctx, pending).await;
                if active.none() {
                    continue;
                }
                let addrs = lane_addrs(active, |l| counters.offset(target[l]));
                let vals = stm.read(&mut w, &ctx, active, &addrs).await;
                let ok = active & stm.opaque(&w);
                let upd = lane_vals(ok, |l| vals[l] + 1);
                stm.write(&mut w, &ctx, ok, &addrs, &upd).await;
                let committed = stm.commit(&mut w, &ctx, active).await;
                for l in committed.iter() {
                    remaining[l] -= 1;
                }
                fresh = committed; // committed lanes pick a new target
            }
        }
    })
    .unwrap();
}

fn check_counter_total<S: Stm + 'static>(make: impl FnOnce(&mut Sim, StmShared, StmConfig) -> S) {
    let mut s = sim(1 << 18);
    let cfg = StmConfig::new(1 << 10);
    let shared = StmShared::init(&mut s, &cfg).unwrap();
    let n_counters = 64;
    let counters = s.alloc(n_counters).unwrap();
    let stm = Rc::new(make(&mut s, shared, cfg));
    let grid = LaunchConfig::new(4, 64);
    let n_incr = 4;
    run_counter_kernel(&mut s, Rc::clone(&stm), grid, counters, n_counters, n_incr);
    let total: u64 = s.read_slice(counters, n_counters).iter().map(|v| *v as u64).sum();
    assert_eq!(
        total,
        grid.total_threads() * n_incr as u64,
        "lost or duplicated increments under {}",
        stm.name()
    );
    let st = stm.stats();
    let st = st.borrow();
    assert_eq!(st.commits, grid.total_threads() * n_incr as u64);
}

#[test]
fn hv_sorting_preserves_increments() {
    check_counter_total(|_, sh, cfg| LockStm::hv_sorting(sh, cfg));
}

#[test]
fn tbv_sorting_preserves_increments() {
    check_counter_total(|_, sh, cfg| LockStm::tbv_sorting(sh, cfg));
}

#[test]
fn hv_backoff_preserves_increments() {
    check_counter_total(|_, sh, cfg| LockStm::hv_backoff(sh, cfg));
}

#[test]
fn tbv_backoff_preserves_increments() {
    check_counter_total(|_, sh, cfg| LockStm::tbv_backoff(sh, cfg));
}

#[test]
fn norec_preserves_increments() {
    check_counter_total(|_, sh, cfg| NorecStm::new(sh, cfg));
}

#[test]
fn optimized_preserves_increments() {
    check_counter_total(|_, sh, cfg| OptimizedStm::new(sh, cfg, 64));
}

#[test]
fn optimized_hv_mode_preserves_increments() {
    // Force HV selection: pretend shared data exceeds the lock count.
    check_counter_total(|_, sh, cfg| OptimizedStm::new(sh, cfg, 1 << 20));
}

#[test]
fn egpgv_preserves_increments() {
    check_counter_total(|s, sh, cfg| EgpgvStm::init(s, sh, cfg).unwrap());
}

#[test]
fn cgl_preserves_increments() {
    check_counter_total(|s, _, _| CglStm::init(s).unwrap());
}

#[test]
fn pre_commit_vbv_preserves_increments() {
    check_counter_total(|_, sh, mut cfg| {
        cfg.pre_commit_vbv = true;
        LockStm::hv_sorting(sh, cfg)
    });
}

#[test]
fn uncoalesced_sets_preserve_increments() {
    check_counter_total(|_, sh, mut cfg| {
        cfg.coalesced_sets = false;
        LockStm::hv_sorting(sh, cfg)
    });
}

#[test]
fn flat_locklog_preserves_increments() {
    check_counter_total(|_, sh, mut cfg| {
        cfg.locklog_buckets = 1;
        LockStm::hv_sorting(sh, cfg)
    });
}

/// The paper's Section 3.2.2 starvation example: T1 reads Y and writes X
/// while T2 (same warp) reads X and writes Y. Locking read locations at
/// commit (as GPU-STM does) must let both make progress instead of
/// mutually aborting forever.
#[test]
fn cross_readwrite_lanes_in_one_warp_progress() {
    let mut s = sim(1 << 16);
    let cfg = StmConfig::new(1 << 8);
    let shared = StmShared::init(&mut s, &cfg).unwrap();
    let data = s.alloc(2).unwrap();
    let stm = Rc::new(LockStm::hv_sorting(shared, cfg));
    let k_stm = Rc::clone(&stm);
    s.launch(LaunchConfig::new(1, 32), move |ctx: WarpCtx| {
        let stm = Rc::clone(&k_stm);
        async move {
            let mut w = stm.new_warp();
            let two = gpu_sim::LaneMask::first_n(2);
            let mut pending = two;
            // Lane 0: read data[1], write data[0]. Lane 1: read data[0], write data[1].
            while pending.any() {
                let active = stm.begin(&mut w, &ctx, pending).await;
                let raddr = lane_addrs(active, |l| data.offset(1 - l as u32));
                let vals = stm.read(&mut w, &ctx, active, &raddr).await;
                let ok = active & stm.opaque(&w);
                let waddr = lane_addrs(ok, |l| data.offset(l as u32));
                let upd = lane_vals(ok, |l| vals[l] + 10);
                stm.write(&mut w, &ctx, ok, &waddr, &upd).await;
                let committed = stm.commit(&mut w, &ctx, active).await;
                pending &= !committed;
            }
        }
    })
    .unwrap();
    // Both lanes committed exactly once.
    assert_eq!(stm.stats().borrow().commits, 2);
}

/// Read-only transactions must commit without acquiring any locks and
/// without touching the global clock.
#[test]
fn read_only_transactions_are_cheap() {
    let mut s = sim(1 << 16);
    let cfg = StmConfig::new(1 << 8);
    let shared = StmShared::init(&mut s, &cfg).unwrap();
    let data = s.alloc(64).unwrap();
    let stm = Rc::new(LockStm::hv_sorting(shared, cfg));
    let k_stm = Rc::clone(&stm);
    s.launch(LaunchConfig::new(1, 32), move |ctx: WarpCtx| {
        let stm = Rc::clone(&k_stm);
        async move {
            let mut w = stm.new_warp();
            let mask = ctx.id().launch_mask;
            let active = stm.begin(&mut w, &ctx, mask).await;
            let addrs = lane_addrs(active, |l| data.offset(l as u32));
            let _ = stm.read(&mut w, &ctx, active, &addrs).await;
            let committed = stm.commit(&mut w, &ctx, active).await;
            assert!(committed.all());
        }
    })
    .unwrap();
    let stats = stm.stats();
    let st = stats.borrow();
    assert_eq!(st.commits, 32);
    assert_eq!(st.read_only_commits, 32);
    assert_eq!(s.read(shared.clock), 0, "read-only commits must not bump the clock");
}

/// Write-after-read within a transaction must observe its own writes
/// (read-your-writes through the write-set Bloom filter).
#[test]
fn read_your_own_writes() {
    let mut s = sim(1 << 16);
    let cfg = StmConfig::new(1 << 8);
    let shared = StmShared::init(&mut s, &cfg).unwrap();
    let data = s.alloc(32).unwrap();
    let out = s.alloc(32).unwrap();
    let stm = Rc::new(LockStm::hv_sorting(shared, cfg));
    let k_stm = Rc::clone(&stm);
    s.launch(LaunchConfig::new(1, 32), move |ctx: WarpCtx| {
        let stm = Rc::clone(&k_stm);
        async move {
            let mut w = stm.new_warp();
            let mask = ctx.id().launch_mask;
            let active = stm.begin(&mut w, &ctx, mask).await;
            let addrs = lane_addrs(active, |l| data.offset(l as u32));
            stm.write(&mut w, &ctx, active, &addrs, &lane_vals(active, |l| l as u32 + 7)).await;
            let seen = stm.read(&mut w, &ctx, active, &addrs).await;
            let oaddrs = lane_addrs(active, |l| out.offset(l as u32));
            stm.write(&mut w, &ctx, active, &oaddrs, &seen).await;
            let committed = stm.commit(&mut w, &ctx, active).await;
            assert!(committed.all());
        }
    })
    .unwrap();
    for l in 0..32 {
        assert_eq!(s.read(out.offset(l)), l + 7);
    }
}

/// A recorded history under heavy conflict must show both commits and
/// (for this contended configuration) aborts, and commit versions must be
/// unique and dense enough to order transactions.
#[test]
fn recorder_captures_history() {
    let mut s = sim(1 << 18);
    let cfg = StmConfig::new(1 << 4); // tiny lock table: force conflicts
    let shared = StmShared::init(&mut s, &cfg).unwrap();
    let counters = s.alloc(4).unwrap();
    let rec = recorder();
    let stm = Rc::new(LockStm::hv_sorting(shared, cfg).with_recorder(Rc::clone(&rec)));
    run_counter_kernel(&mut s, Rc::clone(&stm), LaunchConfig::new(2, 64), counters, 4, 2);
    let h = rec.borrow();
    assert_eq!(h.commits.len(), 2 * 64 * 2);
    let mut versions: Vec<u32> = h.commits.iter().filter_map(|c| c.version).collect();
    let n = versions.len();
    versions.sort_unstable();
    versions.dedup();
    assert_eq!(versions.len(), n, "commit versions must be unique");
    // Contended counters with a 16-entry lock table: conflicts guaranteed.
    assert!(stm.stats().borrow().aborts > 0, "expected contention-induced aborts");
}

/// Determinism: identical runs produce identical cycle counts and stats.
#[test]
fn runs_are_deterministic() {
    let run = || {
        let mut s = sim(1 << 18);
        let cfg = StmConfig::new(1 << 8);
        let shared = StmShared::init(&mut s, &cfg).unwrap();
        let counters = s.alloc(16).unwrap();
        let stm = Rc::new(LockStm::hv_sorting(shared, cfg));
        run_counter_kernel(&mut s, Rc::clone(&stm), LaunchConfig::new(2, 64), counters, 16, 3);
        let st = stm.stats();
        let st = st.borrow();
        (st.commits, st.aborts, s.read_slice(counters, 16))
    };
    assert_eq!(run(), run());
}

/// The paper's justification for locking read locations (Section 3.2.2):
/// with write-only commit locking, the cross read/write pair in one warp
/// mutually aborts forever under lockstep execution. The watchdog proves
/// the starvation that GPU-STM's read-locking avoids.
#[test]
fn write_only_locking_starves_on_cross_readwrite() {
    let mut simcfg = SimConfig::with_memory(1 << 16);
    simcfg.watchdog_cycles = 400_000;
    let mut s = Sim::new(simcfg);
    let mut cfg = StmConfig::new(1 << 8);
    cfg.lock_read_set = false; // CPU-STM convention: ablation
    let shared = StmShared::init(&mut s, &cfg).unwrap();
    let data = s.alloc(2).unwrap();
    let stm = Rc::new(LockStm::hv_sorting(shared, cfg));
    let k_stm = Rc::clone(&stm);
    let err = s
        .launch(LaunchConfig::new(1, 32), move |ctx: WarpCtx| {
            let stm = Rc::clone(&k_stm);
            async move {
                let mut w = stm.new_warp();
                let two = gpu_sim::LaneMask::first_n(2);
                let mut pending = two;
                // Lane 0: read data[1], write data[0]; lane 1 vice versa.
                while pending.any() {
                    let active = stm.begin(&mut w, &ctx, pending).await;
                    let raddr = gpu_stm::lane_addrs(active, |l| data.offset(1 - l as u32));
                    let vals = stm.read(&mut w, &ctx, active, &raddr).await;
                    let ok = active & stm.opaque(&w);
                    let waddr = gpu_stm::lane_addrs(ok, |l| data.offset(l as u32));
                    let upd = gpu_stm::lane_vals(ok, |l| vals[l] + 1);
                    stm.write(&mut w, &ctx, ok, &waddr, &upd).await;
                    let committed = stm.commit(&mut w, &ctx, active).await;
                    pending &= !committed;
                }
            }
        })
        .unwrap_err();
    assert!(err.is_progress_failure(), "expected lockstep starvation, got {err:?}");
}

/// The write-only-locking ablation still preserves correctness on
/// low-contention (non-pathological) workloads.
#[test]
fn write_only_locking_correct_without_cross_contention() {
    check_counter_total(|_, sh, mut cfg| {
        cfg.lock_read_set = false;
        LockStm::hv_sorting(sh, cfg)
    });
}

/// Disabling the write-set Bloom filter changes cost, not semantics.
#[test]
fn bloomless_writeset_preserves_increments() {
    check_counter_total(|_, sh, mut cfg| {
        cfg.write_set_bloom = false;
        LockStm::hv_sorting(sh, cfg)
    });
}
