//! # gpu-locks — lock-based synchronisation on SIMT hardware
//!
//! Implementations of the three GPU spin-lock schemes of the paper's
//! Algorithm 1 (Section 2.2), which motivate transactional memory:
//!
//! - **Scheme #1** ([`spin_lock_lockstep`]): a plain spinlock executed by
//!   multiple lanes of one warp in lockstep. The winner waits for warp
//!   reconvergence at the critical-section entry while losers spin forever
//!   — **deadlock**.
//! - **Scheme #2** ([`spin_lock_one`] under
//!   [`serialize_lanes`](gpu_sim::simt::serialize_lanes)): serialise the
//!   lanes of each warp, at the cost of 1/32 hardware utilisation.
//! - **Scheme #3** ([`try_lock`]): diverge on acquisition failure. Correct
//!   for a single lock per thread, but **livelocks** when threads take
//!   multiple locks in conflicting orders, because lockstep retry re-creates
//!   the same circular contention every iteration.
//!
//! The livelock is broken by imposing a global acquisition order — the
//! insight GPU-STM's encounter-time lock-sorting generalises
//! ([`try_lock_sorted`]).

#![warn(missing_docs)]

use gpu_sim::{Addr, LaneAddrs, LaneMask, LaneVals, Sim, SimError, WarpCtx, WARP_SIZE};

/// A word-sized mutex in device memory (0 = free, 1 = held).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GpuMutex(pub Addr);

impl GpuMutex {
    /// Allocates a mutex on the device.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfMemory`] when the device is full.
    pub fn init(sim: &mut Sim) -> Result<Self, SimError> {
        Ok(GpuMutex(sim.alloc(1)?))
    }
}

/// Scheme #1: every active lane spins on CAS until it owns `lock`, then
/// the warp reconverges before the critical section.
///
/// With more than one active lane this **deadlocks** (the simulator's
/// watchdog fires): the winning lane is masked off at the loop exit,
/// waiting for reconvergence, while the losers can never acquire a lock
/// that will never be released. Returns only when every active lane has
/// exited the spin loop — i.e. never, under intra-warp contention.
pub async fn spin_lock_lockstep(ctx: &WarpCtx, mask: LaneMask, lock: GpuMutex) {
    let mut spinning = mask;
    let addrs = [lock.0; WARP_SIZE];
    let zeros = [0u32; WARP_SIZE];
    let ones = [1u32; WARP_SIZE];
    // Lockstep: the warp keeps issuing the CAS for the lanes still in the
    // loop; lanes that won wait at the reconvergence point (loop exit).
    while spinning.any() {
        let old = ctx.atomic_cas(spinning, &addrs, &zeros, &ones).await;
        spinning = spinning.filter(|l| old[l] != 0);
    }
}

/// Spin-acquires `lock` for a single lane (safe intra-warp: the caller
/// serialises lanes, Scheme #2). Still contends with other warps.
pub async fn spin_lock_one(ctx: &WarpCtx, lane: usize, lock: GpuMutex) {
    loop {
        if ctx.atomic_cas_one(lane, lock.0, 0, 1).await == 0 {
            return;
        }
    }
}

/// Releases a mutex held by `lane`.
pub async fn unlock_one(ctx: &WarpCtx, lane: usize, lock: GpuMutex) {
    ctx.store_one(lane, lock.0, 0).await;
}

/// Scheme #3: each active lane tries its own lock once; returns the mask
/// of lanes that acquired it. Losing lanes diverge and retry later
/// (no spinning, so no Scheme-#1 deadlock).
pub async fn try_lock(ctx: &WarpCtx, mask: LaneMask, addrs: &LaneAddrs) -> LaneMask {
    let zeros = [0u32; WARP_SIZE];
    let ones = [1u32; WARP_SIZE];
    let old = ctx.atomic_cas(mask, addrs, &zeros, &ones).await;
    mask.filter(|l| old[l] == 0)
}

/// Releases per-lane locks.
pub async fn unlock(ctx: &WarpCtx, mask: LaneMask, addrs: &LaneAddrs) {
    let zeros = [0u32; WARP_SIZE];
    ctx.store(mask, addrs, &zeros).await;
}

/// Attempts to acquire, per lane, the *set* of locks given by
/// `lock_of(lane, k)` for `k < n_locks(lane)`, in the caller's order.
/// On any failure the lane releases what it got and reports failure.
///
/// Returns the lanes that acquired *all* their locks. With conflicting
/// per-lane orders and lockstep retry this livelocks (the paper's circular
/// locking phenomenon); see [`try_lock_sorted`].
pub async fn try_lock_multi(
    ctx: &WarpCtx,
    mask: LaneMask,
    max_locks: usize,
    mut lock_count: impl FnMut(usize) -> usize,
    mut lock_of: impl FnMut(usize, usize) -> Addr,
) -> LaneMask {
    let mut holding = mask; // lanes that still hold everything so far
    let mut acquired = [0usize; WARP_SIZE];
    for k in 0..max_locks {
        let m = holding.filter(|l| k < lock_count(l));
        if m.none() {
            break;
        }
        let mut addrs = [Addr::NULL; WARP_SIZE];
        for l in m.iter() {
            addrs[l] = lock_of(l, k);
        }
        let got = try_lock(ctx, m, &addrs).await;
        for l in m.iter() {
            if got.contains(l) {
                acquired[l] = k + 1;
            } else {
                holding = holding.without(l);
            }
        }
    }
    // Losers roll back.
    let losers = mask & !holding;
    if losers.any() {
        let max_acq = losers.iter().map(|l| acquired[l]).max().unwrap_or(0);
        for k in 0..max_acq {
            let m = losers.filter(|l| k < acquired[l]);
            if m.none() {
                break;
            }
            let mut addrs = [Addr::NULL; WARP_SIZE];
            for l in m.iter() {
                addrs[l] = lock_of(l, k);
            }
            unlock(ctx, m, &addrs).await;
        }
    }
    holding
}

/// Like [`try_lock_multi`] but acquires each lane's locks in ascending
/// address order, imposing the global order that makes circular livelock
/// impossible — the essence of encounter-time lock-sorting.
pub async fn try_lock_sorted(
    ctx: &WarpCtx,
    mask: LaneMask,
    max_locks: usize,
    mut lock_count: impl FnMut(usize) -> usize,
    mut lock_of: impl FnMut(usize, usize) -> Addr,
) -> LaneMask {
    // Sort each lane's lock list by address first.
    let mut sorted: Vec<Vec<Addr>> = vec![Vec::new(); WARP_SIZE];
    for l in mask.iter() {
        let mut v: Vec<Addr> = (0..lock_count(l)).map(|k| lock_of(l, k)).collect();
        v.sort_unstable();
        v.dedup();
        sorted[l] = v;
    }
    try_lock_multi(ctx, mask, max_locks, |l| sorted[l].len(), |l, k| sorted[l][k]).await
}

/// Releases the (sorted, deduplicated) multi-lock set taken by
/// [`try_lock_sorted`] for the winning lanes.
pub async fn unlock_sorted(
    ctx: &WarpCtx,
    mask: LaneMask,
    max_locks: usize,
    mut lock_count: impl FnMut(usize) -> usize,
    mut lock_of: impl FnMut(usize, usize) -> Addr,
) {
    let mut sorted: Vec<Vec<Addr>> = vec![Vec::new(); WARP_SIZE];
    for l in mask.iter() {
        let mut v: Vec<Addr> = (0..lock_count(l)).map(|k| lock_of(l, k)).collect();
        v.sort_unstable();
        v.dedup();
        sorted[l] = v;
    }
    let rounds = mask.iter().map(|l| sorted[l].len()).max().unwrap_or(0).min(max_locks);
    for k in 0..rounds {
        let m = mask.filter(|l| k < sorted[l].len());
        if m.none() {
            break;
        }
        let mut addrs = [Addr::NULL; WARP_SIZE];
        for l in m.iter() {
            addrs[l] = sorted[l][k];
        }
        unlock(ctx, m, &addrs).await;
    }
}

/// Convenience: a non-atomic read-modify-write increment, the classic
/// critical-section body for lock demos (`*addr += delta` per lane).
pub async fn unprotected_add(ctx: &WarpCtx, mask: LaneMask, addrs: &LaneAddrs, delta: u32) {
    let vals = ctx.load(mask, addrs).await;
    let mut upd: LaneVals = [0; WARP_SIZE];
    for l in mask.iter() {
        upd[l] = vals[l] + delta;
    }
    ctx.store(mask, addrs, &upd).await;
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{simt::serialize_lanes, LaunchConfig, Sim, SimConfig, SimError};

    fn sim_with_watchdog(cycles: u64) -> Sim {
        let mut cfg = SimConfig::with_memory(1 << 16);
        cfg.watchdog_cycles = cycles;
        Sim::new(cfg)
    }

    #[test]
    fn scheme1_single_lane_succeeds() {
        let mut s = sim_with_watchdog(1 << 24);
        let lock = GpuMutex::init(&mut s).unwrap();
        s.launch(LaunchConfig::new(1, 32), move |ctx| async move {
            spin_lock_lockstep(&ctx, LaneMask::lane(0), lock).await;
            unlock_one(&ctx, 0, lock).await;
        })
        .unwrap();
        assert_eq!(s.read(lock.0), 0);
    }

    #[test]
    fn scheme1_two_lanes_deadlocks() {
        // The paper's Section 2.2 deadlock: two lanes of one warp compete
        // for a spinlock in lockstep.
        let mut s = sim_with_watchdog(200_000);
        let lock = GpuMutex::init(&mut s).unwrap();
        let err = s
            .launch(LaunchConfig::new(1, 32), move |ctx| async move {
                spin_lock_lockstep(&ctx, LaneMask::first_n(2), lock).await;
            })
            .unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }), "expected deadlock, got {err:?}");
    }

    #[test]
    fn scheme2_serialization_is_correct_but_serial() {
        let mut s = sim_with_watchdog(1 << 30);
        let lock = GpuMutex::init(&mut s).unwrap();
        let counter = s.alloc(1).unwrap();
        s.launch(LaunchConfig::new(2, 64), move |ctx| async move {
            for turn in serialize_lanes(ctx.id().launch_mask) {
                let lane = turn.leader().unwrap();
                spin_lock_one(&ctx, lane, lock).await;
                // Non-atomic increment, safe only because the lock is held.
                unprotected_add(&ctx, turn, &[counter; WARP_SIZE], 1).await;
                unlock_one(&ctx, lane, lock).await;
            }
        })
        .unwrap();
        assert_eq!(s.read(counter), 128);
    }

    #[test]
    fn scheme3_single_lock_per_thread_succeeds() {
        let mut s = sim_with_watchdog(1 << 30);
        let locks = s.alloc(32).unwrap();
        let data = s.alloc(32).unwrap();
        s.launch(LaunchConfig::new(1, 32), move |ctx| async move {
            // All lanes lock the same pair of... no: each lane its own lock,
            // two lanes per lock to create contention.
            let addrs: LaneAddrs = std::array::from_fn(|l| locks.offset((l / 2) as u32));
            let mut pending = ctx.id().launch_mask;
            while pending.any() {
                let got = try_lock(&ctx, pending, &addrs).await;
                if got.none() {
                    continue;
                }
                let daddrs: LaneAddrs = std::array::from_fn(|l| data.offset((l / 2) as u32));
                unprotected_add(&ctx, got, &daddrs, 1).await;
                unlock(&ctx, got, &addrs).await;
                pending &= !got;
            }
        })
        .unwrap();
        for i in 0..16 {
            assert_eq!(s.read(data.offset(i)), 2, "slot {i}");
        }
    }

    #[test]
    fn scheme3_circular_two_locks_livelocks() {
        // Lane 0 takes (A, B); lane 1 takes (B, A). Lockstep retry
        // re-creates the conflict forever — the paper's livelock.
        let mut s = sim_with_watchdog(300_000);
        let locks = s.alloc(2).unwrap();
        let err = s
            .launch(LaunchConfig::new(1, 32), move |ctx| async move {
                let mut pending = LaneMask::first_n(2);
                while pending.any() {
                    let got = try_lock_multi(
                        &ctx,
                        pending,
                        2,
                        |_| 2,
                        |l, k| {
                            // lane 0: A then B; lane 1: B then A.
                            locks.offset(((l + k) % 2) as u32)
                        },
                    )
                    .await;
                    if got.any() {
                        unlock_sorted(
                            &ctx,
                            got,
                            2,
                            |_| 2,
                            |l, k| locks.offset(((l + k) % 2) as u32),
                        )
                        .await;
                        pending &= !got;
                    }
                }
            })
            .unwrap_err();
        assert!(matches!(err, SimError::Livelock { .. }), "expected livelock, got {err:?}");
    }

    #[test]
    fn sorted_two_locks_complete() {
        // Identical contention, but sorted acquisition: finishes.
        let mut s = sim_with_watchdog(1 << 30);
        let locks = s.alloc(2).unwrap();
        let done = s.alloc(1).unwrap();
        s.launch(LaunchConfig::new(1, 32), move |ctx| async move {
            let mut pending = LaneMask::first_n(2);
            while pending.any() {
                let got = try_lock_sorted(
                    &ctx,
                    pending,
                    2,
                    |_| 2,
                    |l, k| locks.offset(((l + k) % 2) as u32),
                )
                .await;
                if got.any() {
                    ctx.atomic_add_uniform(got, done, 1).await;
                    unlock_sorted(&ctx, got, 2, |_| 2, |l, k| locks.offset(((l + k) % 2) as u32))
                        .await;
                    pending &= !got;
                }
            }
        })
        .unwrap();
        assert_eq!(s.read(done), 2);
        assert_eq!(s.read(locks), 0);
        assert_eq!(s.read(locks.offset(1)), 0);
    }

    #[test]
    fn try_lock_multi_rolls_back_on_failure() {
        let mut s = sim_with_watchdog(1 << 24);
        let locks = s.alloc(4).unwrap();
        // Pre-hold lock 2 so lane 0 (wanting 0,1,2) fails after taking 0,1.
        s.write(locks.offset(2), 1);
        s.launch(LaunchConfig::new(1, 32), move |ctx| async move {
            let got =
                try_lock_multi(&ctx, LaneMask::lane(0), 3, |_| 3, |_, k| locks.offset(k as u32))
                    .await;
            assert!(got.none());
        })
        .unwrap();
        // Locks 0 and 1 must have been released.
        assert_eq!(s.read(locks.offset(0)), 0);
        assert_eq!(s.read(locks.offset(1)), 0);
        assert_eq!(s.read(locks.offset(2)), 1);
    }
}
