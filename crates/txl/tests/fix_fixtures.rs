//! Every seeded-bug fixture is paired with a committed post-fix twin:
//! `txl fix` must reproduce the twin byte for byte, the twin must lint
//! clean of the repaired rule, and the dynamic race-detector gate must
//! pass on it.

use txl::fix::dynamic_check;
use txl::lint::LintConfig;
use txl::{fix_source, lint_source, FixConfig};

/// Fixture capacity, matching the bench lint gate: TL003 fires on write
/// sets the paper's ownership table cannot hold.
const CAPACITY: u32 = 32;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn cfg() -> FixConfig {
    FixConfig {
        lint: LintConfig { write_set_capacity: Some(CAPACITY), ..LintConfig::default() },
        ..FixConfig::default()
    }
}

/// (bug fixture, expected twin, the rule the seeded bug exercises).
const PAIRS: [(&str, &str, &str); 5] = [
    ("weak_isolation_bug.txl", "weak_isolation_fixed.txl", "TL001"),
    ("unsorted_locks_bug.txl", "unsorted_locks_fixed.txl", "TL002"),
    ("overflow_writeset_bug.txl", "overflow_writeset_fixed.txl", "TL003"),
    ("divergent_atomic_bug.txl", "divergent_atomic_fixed.txl", "TL004"),
    ("footprint_order_bug.txl", "footprint_order_fixed.txl", "TL005"),
];

#[test]
fn every_bug_fixture_repairs_to_its_committed_twin() {
    for (bug, twin, rule) in PAIRS {
        let src = fixture(bug);
        let expect = fixture(twin);
        let r = fix_source(&src, &cfg()).unwrap_or_else(|e| panic!("{bug}: {e}"));
        assert!(r.is_clean(), "{bug}: residual findings {:?}", r.residual);
        assert!(
            r.applied.iter().any(|a| a.diagnostic.rule.id() == rule),
            "{bug}: no {rule} patch among {:?}",
            r.applied.iter().map(|a| a.diagnostic.rule.id()).collect::<Vec<_>>()
        );
        assert_eq!(r.fixed, expect, "{bug}: repair does not match {twin} byte-for-byte");
    }
}

#[test]
fn unwakeable_retry_is_residual_with_source_untouched() {
    // TL008 has no sound rewrite (the missing read is the author's
    // intent): `txl fix` must converge with the source untouched and
    // the finding reported residual, not silently dropped.
    let src = fixture("unwakeable_retry_bug.txl");
    let r = fix_source(&src, &cfg()).unwrap();
    assert!(r.converged, "no-rewrite findings must still converge");
    assert!(r.applied.is_empty(), "no patch may be applied for TL008");
    assert_eq!(r.fixed, src, "the source must be byte-identical");
    assert_eq!(r.residual.len(), 1, "{:?}", r.residual);
    assert_eq!(r.residual[0].rule.id(), "TL008");
}

#[test]
fn every_twin_lints_clean_of_its_repaired_rule() {
    for (_, twin, rule) in PAIRS {
        let src = fixture(twin);
        let diags = lint_source(&src, &cfg().lint).unwrap_or_else(|e| panic!("{twin}: {e}"));
        assert!(diags.iter().all(|d| d.rule.id() != rule), "{twin}: still lints {rule}: {diags:?}");
    }
}

#[test]
fn every_twin_passes_the_dynamic_gate() {
    for (_, twin, _) in PAIRS {
        let src = fixture(twin);
        let gate = dynamic_check(&src, 7).unwrap_or_else(|e| panic!("{twin}: {e}"));
        assert!(gate.is_clean(), "{twin}: dynamic violations {:?}", gate.violations);
    }
}

#[test]
fn twins_are_fixpoints_of_the_repair_engine() {
    for (_, twin, _) in PAIRS {
        let src = fixture(twin);
        let r = fix_source(&src, &cfg()).unwrap_or_else(|e| panic!("{twin}: {e}"));
        assert!(!r.changed(), "{twin}: repair of a twin rewrote it:\n{}", r.diff(twin));
    }
}
