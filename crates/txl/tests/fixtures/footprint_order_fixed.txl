kernel transfer(from: array, into: array) {
    let i = tid() % 8;
    atomic {
        from[i] = from[i] - 1;
        into[i] = into[i] + 1;
    }
    atomic {
        from[i] = from[i] + 1;
        into[i] = into[i] - 1;
    }
}
