kernel scatter(out: array) {
    let i = 0;
    while i < 64 { atomic { out[i] = out[i] + 1; i = i + 1; } }
}
