kernel vote(tally: array) {
    atomic { if tid() % 2 { tally[0] = tally[0] + 1; } }
}
