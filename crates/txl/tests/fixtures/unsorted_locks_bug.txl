kernel locks(lock: array, data: array) {
    let a = tid() % 4;
    let b = 3 - a;
    while lock[a] { }
    lock[a] = 1;
    while lock[b] { }
    lock[b] = 1;
    data[a] = data[a] + 1;
    lock[b] = 0;
    lock[a] = 0;
}
