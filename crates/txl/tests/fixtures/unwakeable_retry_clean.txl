kernel drain(q: array) {
    atomic {
        let n = q[0];
        if n == 0 {
            retry;
        }
        q[0] = n - 1;
    }
}
