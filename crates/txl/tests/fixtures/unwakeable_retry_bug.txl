kernel drain(q: array) {
    atomic {
        retry;
        q[0] = 0;
    }
}
