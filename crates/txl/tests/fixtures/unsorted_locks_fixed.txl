kernel locks(lock: array, data: array) {
    let a = tid() % 4;
    let b = 3 - a;
    atomic { data[a] = data[a] + 1; }
}
