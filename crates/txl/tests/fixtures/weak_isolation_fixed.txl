kernel weak_iso(acct: array) {
    let i = tid() % 8;
    atomic { acct[i] = acct[i] + 1; }
    atomic { acct[7] = 0; }
}
