kernel vote(tally: array) {
    let v = tid() % 2;
    atomic { tally[v] = tally[v] + 1; }
}
