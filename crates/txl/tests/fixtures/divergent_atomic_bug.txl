kernel vote(tally: array) {
    if tid() % 2 {
        atomic { tally[0] = tally[0] + 1; }
    }
}
