kernel locks(lock: array, data: array) {
    let a = tid() % 4;
    while lock[a] { }
    lock[a] = 1;
    while lock[a + 4] { }
    lock[a + 4] = 1;
    data[a] = data[a] + 1;
    lock[a + 4] = 0;
    lock[a] = 0;
}
