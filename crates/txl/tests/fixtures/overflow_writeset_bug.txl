kernel scatter(out: array) {
    let i = 0;
    atomic {
        while i < 64 {
            out[i] = out[i] + 1;
            i = i + 1;
        }
    }
}
