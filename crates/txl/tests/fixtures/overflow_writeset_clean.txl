kernel scatter(out: array) {
    atomic {
        out[0] = out[0] + 1;
        out[1] = out[1] + 1;
    }
}
