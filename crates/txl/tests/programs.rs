//! End-to-end TXL programs executed on the simulator under real STM
//! runtimes — the full "compiler support" pipeline of the paper.

use gpu_sim::{race_sink, LaunchConfig, RaceSink, Sim, SimConfig};
use gpu_stm::{CglStm, LockStm, NorecStm, Stm, StmConfig, StmShared};
use std::rc::Rc;
use txl::{compile, launch, ArrayBinding, TxlError};

fn sim() -> Sim {
    let mut cfg = SimConfig::with_memory(1 << 18);
    cfg.watchdog_cycles = 1 << 32;
    Sim::new(cfg)
}

fn sim_with_race() -> (Sim, RaceSink) {
    let sink = race_sink();
    let mut cfg = SimConfig::with_memory(1 << 18);
    cfg.watchdog_cycles = 1 << 32;
    cfg.race = Some(Rc::clone(&sink));
    (Sim::new(cfg), sink)
}

fn stm_setup(sim: &mut Sim, locks: u32) -> (StmShared, StmConfig) {
    let cfg = StmConfig::new(locks);
    let shared = StmShared::init(sim, &cfg).unwrap();
    (shared, cfg)
}

/// Every thread atomically increments a random counter; the total is
/// conserved under every STM runtime.
#[test]
fn atomic_increment_conserves_total_across_runtimes() {
    let src = r#"
        kernel incr(counters: array) {
            let n = 3;
            while n > 0 {
                let i = rand(16);
                atomic {
                    counters[i] = counters[i] + 1;
                }
                n = n - 1;
            }
        }
    "#;
    let program = compile(src).unwrap();
    let kernel = program.kernel("incr").unwrap();
    let grid = LaunchConfig::new(2, 64);

    let run = |which: u32| -> u64 {
        let mut s = sim();
        let (shared, cfg) = stm_setup(&mut s, 1 << 6);
        let counters = s.alloc(16).unwrap();
        let bindings = [ArrayBinding::new("counters", counters, 16)];
        match which {
            0 => {
                let stm = Rc::new(LockStm::hv_sorting(shared, cfg));
                launch(&mut s, &stm, kernel, grid, 5, &bindings).unwrap();
            }
            1 => {
                let stm = Rc::new(LockStm::tbv_sorting(shared, cfg));
                launch(&mut s, &stm, kernel, grid, 5, &bindings).unwrap();
            }
            2 => {
                let stm = Rc::new(NorecStm::new(shared, cfg));
                launch(&mut s, &stm, kernel, grid, 5, &bindings).unwrap();
            }
            _ => {
                let stm = Rc::new(CglStm::init(&mut s).unwrap());
                launch(&mut s, &stm, kernel, grid, 5, &bindings).unwrap();
            }
        }
        s.read_slice(counters, 16).iter().map(|v| *v as u64).sum()
    };
    for which in 0..4 {
        assert_eq!(run(which), grid.total_threads() * 3, "runtime {which}");
    }
}

/// The bank-transfer program: conservation proves that register
/// checkpointing + transactional retry compose correctly under heavy
/// contention (each retry re-reads balances, never double-applies).
#[test]
fn bank_transfer_conserves_money() {
    let src = r#"
        kernel transfer(accounts: array[64]) {
            let k = 4;
            while k > 0 {
                let src = rand(64);
                let dst = rand(64);
                if src != dst {
                    atomic {
                        let a = accounts[src];
                        let b = accounts[dst];
                        if a >= 10 {
                            accounts[src] = a - 10;
                            accounts[dst] = b + 10;
                        }
                    }
                }
                k = k - 1;
            }
        }
    "#;
    let program = compile(src).unwrap();
    let kernel = program.kernel("transfer").unwrap();
    let mut s = sim();
    let (shared, cfg) = stm_setup(&mut s, 1 << 5); // tiny lock table: conflicts
    let accounts = s.alloc(64).unwrap();
    s.fill(accounts, 64, 100);
    let stm = Rc::new(LockStm::hv_sorting(shared, cfg));
    launch(
        &mut s,
        &stm,
        kernel,
        LaunchConfig::new(2, 64),
        11,
        &[ArrayBinding::new("accounts", accounts, 64)],
    )
    .unwrap();
    let total: u64 = s.read_slice(accounts, 64).iter().map(|v| *v as u64).sum();
    assert_eq!(total, 64 * 100, "money created or destroyed");
    assert!(stm.stats().borrow().aborts > 0, "test needs real contention to be meaningful");
}

/// A transaction-modified register that the transaction also reads must be
/// restored on retry: this kernel counts its own successful applications
/// into a register and publishes it; any double-count under retries would
/// break the final sum.
#[test]
fn checkpointed_register_survives_retries() {
    let src = r#"
        kernel count(hot: array, out: array) {
            let mine = 0;
            let k = 8;
            while k > 0 {
                atomic {
                    hot[rand(4)] = hot[rand(4)] + 1;
                    mine = mine + 1;
                }
                k = k - 1;
            }
            out[tid()] = mine;
        }
    "#;
    let program = compile(src).unwrap();
    let kernel = program.kernel("count").unwrap();
    // `mine` must be in the checkpoint set (read-modify-write in tx).
    let txl::ast::Stmt::While { body, .. } = &kernel.body[2] else { panic!() };
    let txl::ast::Stmt::Atomic { checkpoint, .. } = &body[0] else { panic!() };
    assert!(!checkpoint.is_empty(), "`mine` must be checkpointed");

    let mut s = sim();
    let (shared, cfg) = stm_setup(&mut s, 1 << 4);
    let hot = s.alloc(4).unwrap();
    let grid = LaunchConfig::new(2, 32);
    let out = s.alloc(grid.total_threads() as u32).unwrap();
    let stm = Rc::new(LockStm::hv_sorting(shared, cfg));
    launch(
        &mut s,
        &stm,
        kernel,
        grid,
        3,
        &[
            ArrayBinding::new("hot", hot, 4),
            ArrayBinding::new("out", out, grid.total_threads() as u32),
        ],
    )
    .unwrap();
    assert!(stm.stats().borrow().aborts > 0, "need retries for this test to bite");
    // Every thread must have applied exactly 8 transactions.
    for (t, v) in s.read_slice(out, grid.total_threads() as u32).iter().enumerate() {
        assert_eq!(*v, 8, "thread {t} counted {v}");
    }
}

/// Divergent control flow: threads take different if/while paths and each
/// lane's result reflects its own path (SIMT masking correctness).
#[test]
fn divergent_control_flow_per_lane() {
    let src = r#"
        kernel collatz(out: array) {
            let x = tid() + 1;
            let steps = 0;
            while x != 1 {
                if x % 2 == 0 { x = x / 2; } else { x = 3 * x + 1; }
                steps = steps + 1;
            }
            out[tid()] = steps;
        }
    "#;
    let program = compile(src).unwrap();
    let mut s = sim();
    let (shared, cfg) = stm_setup(&mut s, 1 << 4);
    let out = s.alloc(64).unwrap();
    let stm = Rc::new(LockStm::hv_sorting(shared, cfg));
    launch(
        &mut s,
        &stm,
        program.kernel("collatz").unwrap(),
        LaunchConfig::new(1, 64),
        0,
        &[ArrayBinding::new("out", out, 64)],
    )
    .unwrap();
    let host_collatz = |mut x: u32| {
        let mut n = 0;
        while x != 1 {
            x = if x.is_multiple_of(2) { x / 2 } else { 3 * x + 1 };
            n += 1;
        }
        n
    };
    for t in 0..64u32 {
        assert_eq!(s.read(out.offset(t)), host_collatz(t + 1), "thread {t}");
    }
}

/// Out-of-bounds indexing is caught and reported with the thread id.
#[test]
fn out_of_bounds_is_reported() {
    let program = compile("kernel bad(a: array) { a[tid() + 100] = 1; }").unwrap();
    let mut s = sim();
    let (shared, cfg) = stm_setup(&mut s, 1 << 4);
    let a = s.alloc(8).unwrap();
    let stm = Rc::new(LockStm::hv_sorting(shared, cfg));
    let err = launch(
        &mut s,
        &stm,
        program.kernel("bad").unwrap(),
        LaunchConfig::new(1, 32),
        0,
        &[ArrayBinding::new("a", a, 8)],
    )
    .unwrap_err();
    assert!(matches!(err, TxlError::Runtime { .. }), "{err}");
    assert!(err.to_string().contains("out of bounds"));
}

/// Bindings are validated: missing arrays and wrong declared lengths fail
/// before anything launches.
#[test]
fn binding_validation() {
    let program = compile("kernel k(a: array[16]) { a[0] = 1; }").unwrap();
    let mut s = sim();
    let (shared, cfg) = stm_setup(&mut s, 1 << 4);
    let a = s.alloc(8).unwrap();
    let stm = Rc::new(LockStm::hv_sorting(shared, cfg));
    let err = launch(&mut s, &stm, program.kernel("k").unwrap(), LaunchConfig::new(1, 32), 0, &[])
        .unwrap_err();
    assert!(err.to_string().contains("no binding"));
    let err = launch(
        &mut s,
        &stm,
        program.kernel("k").unwrap(),
        LaunchConfig::new(1, 32),
        0,
        &[ArrayBinding::new("a", a, 8)],
    )
    .unwrap_err();
    assert!(err.to_string().contains("declared with length 16"));
}

/// TXL runs are deterministic: same seed, same cycles, same memory.
#[test]
fn txl_execution_is_deterministic() {
    let src = "kernel k(a: array) { let i = rand(32); atomic { a[i] = a[i] + tid(); } }";
    let run = || {
        let program = compile(src).unwrap();
        let mut s = sim();
        let (shared, cfg) = stm_setup(&mut s, 1 << 5);
        let a = s.alloc(32).unwrap();
        let stm = Rc::new(LockStm::hv_sorting(shared, cfg));
        let report = launch(
            &mut s,
            &stm,
            program.kernel("k").unwrap(),
            LaunchConfig::new(2, 64),
            123,
            &[ArrayBinding::new("a", a, 32)],
        )
        .unwrap();
        (report.cycles, s.read_slice(a, 32))
    };
    assert_eq!(run(), run());
}

/// The weak-isolation fixture's seeded bug is real: the happens-before
/// detector observes the statically-flagged non-transactional store
/// racing with transactional traffic on the same array.
#[test]
fn weak_isolation_fixture_races_dynamically() {
    let src = include_str!("fixtures/weak_isolation_bug.txl");
    // Static layer: the lint pass flags the plain store (TL001)...
    let diags = txl::lint::lint_source(src, &txl::lint::LintConfig::default()).unwrap();
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].rule.id(), "TL001");

    // ...and the dynamic layer confirms the hazard on a real execution.
    let program = compile(src).unwrap();
    let (mut s, sink) = sim_with_race();
    let (shared, cfg) = stm_setup(&mut s, 1 << 5);
    let acct = s.alloc(8).unwrap();
    let stm = Rc::new(LockStm::hv_sorting(shared, cfg));
    launch(
        &mut s,
        &stm,
        program.kernel("weak_iso").unwrap(),
        LaunchConfig::new(2, 64),
        9,
        &[ArrayBinding::new("acct", acct, 8)],
    )
    .unwrap();
    let log = sink.borrow();
    assert!(!log.is_empty(), "seeded weak-isolation bug must produce a dynamic race");
    assert!(
        log.races.iter().any(|r| r.addr == acct.offset(7)),
        "race must be on the non-transactionally stored word: {:?}",
        log.races
    );
}

/// The clean twins really are clean: with every shared access inside
/// `atomic` (or uniquely indexed), the detector reports nothing — the
/// divergent-atomic hazard is a performance hazard, not a race, so it is
/// provably masked dynamically.
#[test]
fn clean_and_masked_fixtures_run_race_free() {
    for (name, kernel, words) in [
        ("fixtures/weak_isolation_clean.txl", "weak_iso", 8),
        ("fixtures/divergent_atomic_bug.txl", "vote", 2),
        ("fixtures/divergent_atomic_clean.txl", "vote", 2),
    ] {
        let src = match name {
            "fixtures/weak_isolation_clean.txl" => {
                include_str!("fixtures/weak_isolation_clean.txl")
            }
            "fixtures/divergent_atomic_bug.txl" => {
                include_str!("fixtures/divergent_atomic_bug.txl")
            }
            _ => include_str!("fixtures/divergent_atomic_clean.txl"),
        };
        let program = compile(src).unwrap();
        let (mut s, sink) = sim_with_race();
        let (shared, cfg) = stm_setup(&mut s, 1 << 5);
        let arr = s.alloc(words).unwrap();
        let stm = Rc::new(LockStm::hv_sorting(shared, cfg));
        launch(
            &mut s,
            &stm,
            program.kernel(kernel).unwrap(),
            LaunchConfig::new(2, 64),
            9,
            &[ArrayBinding::new(program.kernels[0].params[0].name.as_str(), arr, words)],
        )
        .unwrap();
        let log = sink.borrow();
        assert!(log.is_empty(), "{name}: unexpected races {:?}", log.races);
    }
}

/// Non-transactional accesses outside `atomic` use plain loads/stores
/// (weak isolation — Section 3.2.1), still SIMT-correct.
#[test]
fn non_transactional_accesses_work() {
    let src = "kernel k(a: array) { a[tid()] = tid() * 2; let v = a[tid()]; a[tid()] = v + 1; }";
    let program = compile(src).unwrap();
    let mut s = sim();
    let (shared, cfg) = stm_setup(&mut s, 1 << 4);
    let a = s.alloc(64).unwrap();
    let stm = Rc::new(LockStm::hv_sorting(shared, cfg));
    launch(
        &mut s,
        &stm,
        program.kernel("k").unwrap(),
        LaunchConfig::new(1, 64),
        0,
        &[ArrayBinding::new("a", a, 64)],
    )
    .unwrap();
    for t in 0..64u32 {
        assert_eq!(s.read(a.offset(t)), t * 2 + 1);
    }
}

/// `retry;` lowers to abort-and-respin: a lane whose precondition is
/// false abandons the attempt (its buffered writes and register effects
/// discarded) and re-runs once a peer's commit has made the condition
/// true. The producer and the consumers share one warp, so the wake
/// chain runs entirely through committed memory.
#[test]
fn retry_respins_until_a_peer_commit_flips_the_flag() {
    let src = r#"
        kernel handoff(flag: array, out: array) {
            atomic {
                if tid() == 0 {
                    flag[0] = 1;
                } else {
                    let f = flag[0];
                    if f == 0 {
                        retry;
                    }
                    out[tid()] = f + 1;
                }
            }
        }
    "#;
    let program = compile(src).unwrap();
    let kernel = program.kernel("handoff").unwrap();
    let grid = LaunchConfig::new(1, 4);

    let run = |which: u32| {
        let mut s = sim();
        let (shared, cfg) = stm_setup(&mut s, 1 << 6);
        let flag = s.alloc(1).unwrap();
        let out = s.alloc(4).unwrap();
        let bindings = [ArrayBinding::new("flag", flag, 1), ArrayBinding::new("out", out, 4)];
        match which {
            0 => {
                let stm = Rc::new(LockStm::hv_sorting(shared, cfg));
                launch(&mut s, &stm, kernel, grid, 7, &bindings).unwrap();
            }
            1 => {
                let stm = Rc::new(NorecStm::new(shared, cfg));
                launch(&mut s, &stm, kernel, grid, 7, &bindings).unwrap();
            }
            _ => {
                let stm = Rc::new(CglStm::init(&mut s).unwrap());
                launch(&mut s, &stm, kernel, grid, 7, &bindings).unwrap();
            }
        }
        assert_eq!(s.read(flag), 1, "runtime {which}: producer commit lost");
        for t in 1..4u32 {
            assert_eq!(s.read(out.offset(t)), 2, "runtime {which}: lane {t} never woke");
        }
    };
    for which in 0..3 {
        run(which);
    }
}

/// A retrying lane's register effects are rolled back with the attempt:
/// the local mutated before `retry` must not leak into the re-run.
#[test]
fn retry_restores_checkpointed_registers() {
    let src = r#"
        kernel once(flag: array, out: array) {
            let acc = 0;
            atomic {
                acc = acc + 1;
                if tid() == 0 {
                    flag[0] = 1;
                } else {
                    if flag[0] == 0 {
                        retry;
                    }
                }
            }
            out[tid()] = acc;
        }
    "#;
    let program = compile(src).unwrap();
    let mut s = sim();
    let (shared, cfg) = stm_setup(&mut s, 1 << 6);
    let flag = s.alloc(1).unwrap();
    let out = s.alloc(2).unwrap();
    let stm = Rc::new(LockStm::hv_sorting(shared, cfg));
    launch(
        &mut s,
        &stm,
        program.kernel("once").unwrap(),
        LaunchConfig::new(1, 2),
        3,
        &[ArrayBinding::new("flag", flag, 1), ArrayBinding::new("out", out, 2)],
    )
    .unwrap();
    // Each lane's committed attempt ran the increment exactly once,
    // however many times lane 1 respun before the flag appeared.
    assert_eq!(s.read(out), 1);
    assert_eq!(s.read(out.offset(1)), 1);
}

/// `retry` outside an `atomic` block is a semantic error.
#[test]
fn retry_outside_atomic_is_rejected() {
    let err = compile("kernel k(a: array) { retry; }").unwrap_err();
    assert!(err.to_string().contains("`retry` outside an `atomic` block"), "{err}");
}
