//! CLI contract tests: the documented exit-code scheme (0 clean,
//! 1 findings/pending fixes, 2 usage/IO/parse errors) and the `fix`
//! subcommand's three modes.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn txl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_txl")).args(args).output().expect("txl runs")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("txl exits normally")
}

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// A scratch file that cleans up after itself.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str, contents: &str) -> Scratch {
        let path = std::env::temp_dir().join(format!("txl-cli-{}-{name}", std::process::id()));
        std::fs::write(&path, contents).expect("scratch file writes");
        Scratch(path)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn lint_clean_exits_zero() {
    let out = txl(&["lint", "--capacity", "32", &fixture("weak_isolation_clean.txl")]);
    assert_eq!(code(&out), 0, "{out:?}");
    assert!(stdout(&out).contains("clean"), "{out:?}");
}

#[test]
fn lint_findings_exit_one() {
    let out = txl(&["lint", "--capacity", "32", &fixture("weak_isolation_bug.txl")]);
    assert_eq!(code(&out), 1, "{out:?}");
    assert!(stdout(&out).contains("TL001"), "{out:?}");
}

#[test]
fn lint_io_error_exits_two() {
    let out = txl(&["lint", "no/such/file.txl"]);
    assert_eq!(code(&out), 2, "{out:?}");
}

#[test]
fn lint_parse_error_exits_two() {
    let bad = Scratch::new("parse.txl", "kernel oops( {");
    let out = txl(&["lint", bad.path()]);
    assert_eq!(code(&out), 2, "{out:?}");
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(code(&txl(&[])), 2);
    assert_eq!(code(&txl(&["lint"])), 2, "no files");
    assert_eq!(code(&txl(&["frobnicate", "x.txl"])), 2, "unknown mode");
    assert_eq!(code(&txl(&["lint", "--wat", "x.txl"])), 2, "unknown flag");
    assert_eq!(code(&txl(&["lint", "--capacity", "many", "x.txl"])), 2, "bad int");
}

#[test]
fn compile_ok_exits_zero() {
    let out = txl(&["compile", &fixture("weak_isolation_clean.txl")]);
    assert_eq!(code(&out), 0, "{out:?}");
}

#[test]
fn fix_check_reports_pending_fixes() {
    let out = txl(&["fix", "--capacity", "32", "--check", &fixture("weak_isolation_bug.txl")]);
    assert_eq!(code(&out), 1, "pending fixes must exit 1: {out:?}");
    let out = txl(&["fix", "--capacity", "32", "--check", &fixture("weak_isolation_fixed.txl")]);
    assert_eq!(code(&out), 0, "an already-repaired file must exit 0: {out:?}");
}

#[test]
fn fix_diff_prints_a_unified_diff_and_exits_zero_when_repaired() {
    let out = txl(&["fix", "--capacity", "32", "--diff", &fixture("unsorted_locks_bug.txl")]);
    assert_eq!(code(&out), 0, "a fully-repaired file exits 0 under --diff: {out:?}");
    let text = stdout(&out);
    assert!(text.contains("--- a/") && text.contains("+++ b/"), "{text}");
    assert!(text.contains("+    atomic {"), "{text}");
}

#[test]
fn fix_write_rewrites_to_the_committed_twin() {
    let bug = std::fs::read_to_string(fixture("divergent_atomic_bug.txl")).expect("fixture");
    let twin = std::fs::read_to_string(fixture("divergent_atomic_fixed.txl")).expect("twin");
    let scratch = Scratch::new("write.txl", &bug);
    let out = txl(&["fix", "--capacity", "32", "--write", scratch.path()]);
    assert_eq!(code(&out), 0, "{out:?}");
    assert_eq!(
        std::fs::read_to_string(Path::new(scratch.path())).expect("rewritten"),
        twin,
        "--write output must match the committed twin"
    );
    // A second --write is a no-op and stays clean.
    let again = txl(&["fix", "--capacity", "32", "--write", scratch.path()]);
    assert_eq!(code(&again), 0, "{again:?}");
}

#[test]
fn fix_json_emits_patch_records() {
    let out = txl(&[
        "fix",
        "--capacity",
        "32",
        "--format",
        "json",
        "--no-gate",
        &fixture("footprint_order_bug.txl"),
    ]);
    assert_eq!(code(&out), 0, "{out:?}");
    let text = stdout(&out);
    for needle in
        ["\"tool\"", "txl-fix", "\"applied\"", "TL005", "\"edits\"", "\"start\"", "\"replacement\""]
    {
        assert!(text.contains(needle), "missing {needle} in {text}");
    }
}

#[test]
fn lint_json_carries_suggested_fixes() {
    let out =
        txl(&["lint", "--capacity", "32", "--format", "json", &fixture("weak_isolation_bug.txl")]);
    assert_eq!(code(&out), 1, "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("\"suggested_fix\""), "{text}");
    assert!(text.contains("TL001"), "{text}");
}

#[test]
fn fix_residual_exits_one() {
    // A guard-position weak read is statically unfixable: the engine
    // reports it residual and the CLI exits 1.
    let src = "kernel k(a: array) {\n    atomic { a[0] = a[0] + 1; }\n    while a[1] { }\n}\n";
    let stuck = Scratch::new("residual.txl", src);
    let out = txl(&["fix", "--diff", stuck.path()]);
    assert_eq!(code(&out), 1, "{out:?}");
    assert!(stdout(&out).contains("residual"), "{out:?}");
}
