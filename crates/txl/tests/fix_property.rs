//! Property tests for the repair engine: on the committed fixtures and
//! on a seeded family of generated programs, fixing is convergent
//! (fixpoint within the round budget) and idempotent (fixing the fixed
//! output changes nothing), and a clean repair really is lint-clean.

use txl::lint::LintConfig;
use txl::{fix_source, FixConfig, FixReport};

fn cfg() -> FixConfig {
    FixConfig {
        lint: LintConfig { write_set_capacity: Some(32), ..LintConfig::default() },
        ..FixConfig::default()
    }
}

/// Fix, then fix the output again: the second pass must be a no-op with
/// the same residual shape — the engine never ping-pongs.
fn assert_idempotent(src: &str, what: &str) -> FixReport {
    let first = fix_source(src, &cfg()).unwrap_or_else(|e| panic!("{what}: {e}"));
    assert!(first.converged, "{what}: did not converge in {} rounds", first.rounds);
    let second = fix_source(&first.fixed, &cfg()).unwrap_or_else(|e| panic!("{what} (2nd): {e}"));
    assert!(
        !second.changed(),
        "{what}: second fix pass still rewrites:\n{}",
        second.diff("second-pass")
    );
    assert_eq!(
        first.residual.len(),
        second.residual.len(),
        "{what}: residual drifted between passes"
    );
    if first.is_clean() {
        let diags = txl::lint_source(&first.fixed, &cfg().lint).expect("fixed output compiles");
        assert!(diags.is_empty(), "{what}: clean report but lint finds {diags:?}");
    }
    first
}

#[test]
fn fixtures_fix_idempotently() {
    let dir = format!("{}/tests/fixtures", env!("CARGO_MANIFEST_DIR"));
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("txl") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("fixture reads");
        assert_idempotent(&src, &path.display().to_string());
        seen += 1;
    }
    assert!(seen >= 10, "only {seen} fixtures found in {dir}");
}

// ------------------------------------------------- generated programs

/// Tiny deterministic xorshift, so the generated family is stable.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Assembles a compilable kernel from a random sequence of statement
/// templates, each drawn from the shapes the five lint rules trigger on
/// (plus benign filler). `uid` keeps generated locals distinct.
fn gen_program(rng: &mut Rng) -> String {
    let mut body = String::new();
    let nstmts = 1 + rng.pick(4);
    for uid in 0..nstmts {
        let t = rng.pick(8);
        let s = match t {
            // Benign transactional increment.
            0 => format!("    atomic {{ a[tid() % 4] = a[tid() % 4] + {uid}; }}\n"),
            // TL001: weak write next to transactional traffic.
            1 => format!("    b[{uid}] = b[{uid}] + 1;\n"),
            // TL001 (guard shape): weak read feeding a let.
            2 => format!("    let w{uid} = a[0] + {uid};\n"),
            // TL002: two-lock spin protocol over `b`.
            3 => format!(
                "    let p{uid} = tid() % 2;\n    let q{uid} = 1 - p{uid};\n    while b[p{uid}] {{ }}\n    b[p{uid}] = 1;\n    while b[q{uid}] {{ }}\n    b[q{uid}] = 1;\n    a[p{uid}] = a[p{uid}] + 1;\n    b[q{uid}] = 0;\n    b[p{uid}] = 0;\n"
            ),
            // TL003: unbounded loop inside an atomic.
            4 => format!(
                "    let i{uid} = 0;\n    atomic {{ while i{uid} < 16 {{ a[i{uid}] = a[i{uid}] + 1; i{uid} = i{uid} + 1; }} }}\n"
            ),
            // TL004: atomic guarded by a divergent branch.
            5 => format!(
                "    if tid() % 2 {{ atomic {{ a[{uid}] = a[{uid}] + 1; }} }}\n"
            ),
            // TL005: two atomics touching a/b in inverted order.
            6 => format!(
                "    let v{uid} = tid() % 4;\n    atomic {{ a[v{uid}] = a[v{uid}] + 1; b[v{uid}] = b[v{uid}] + 1; }}\n    atomic {{ b[v{uid}] = b[v{uid}] - 1; a[v{uid}] = a[v{uid}] - 1; }}\n"
            ),
            // Benign local arithmetic.
            _ => format!("    let z{uid} = tid() * {uid};\n"),
        };
        body.push_str(&s);
    }
    format!("kernel gen(a: array, b: array) {{\n{body}}}\n")
}

#[test]
fn generated_programs_fix_idempotently() {
    let mut rng = Rng(0x9e37_79b9_7f4a_7c15);
    let mut repaired = 0;
    for case in 0..48 {
        let src = gen_program(&mut rng);
        let program = txl::compile(&src);
        assert!(program.is_ok(), "case {case} does not compile: {:?}\n{src}", program.err());
        let r = assert_idempotent(&src, &format!("case {case}"));
        if r.changed() {
            repaired += 1;
        }
    }
    // The template mix guarantees the engine actually exercised rewrites.
    assert!(repaired >= 10, "only {repaired}/48 generated cases needed repair");
}
