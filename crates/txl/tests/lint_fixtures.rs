//! Seeded-bug fixtures and their clean twins: the lint pass must flag
//! every seeded pitfall with the right rule ID at the right source span,
//! and stay silent on the corrected version of the same program.

use txl::lint::{lint_source, LintConfig, Rule};

const WEAK_ISO_BUG: &str = include_str!("fixtures/weak_isolation_bug.txl");
const WEAK_ISO_CLEAN: &str = include_str!("fixtures/weak_isolation_clean.txl");
const LOCKS_BUG: &str = include_str!("fixtures/unsorted_locks_bug.txl");
const LOCKS_CLEAN: &str = include_str!("fixtures/unsorted_locks_clean.txl");
const OVERFLOW_BUG: &str = include_str!("fixtures/overflow_writeset_bug.txl");
const OVERFLOW_CLEAN: &str = include_str!("fixtures/overflow_writeset_clean.txl");
const DIVERGENT_BUG: &str = include_str!("fixtures/divergent_atomic_bug.txl");
const DIVERGENT_CLEAN: &str = include_str!("fixtures/divergent_atomic_clean.txl");
const FOOTPRINT_BUG: &str = include_str!("fixtures/footprint_order_bug.txl");
const FOOTPRINT_CLEAN: &str = include_str!("fixtures/footprint_order_clean.txl");
const RETRY_BUG: &str = include_str!("fixtures/unwakeable_retry_bug.txl");
const RETRY_CLEAN: &str = include_str!("fixtures/unwakeable_retry_clean.txl");

fn lint(src: &str) -> Vec<txl::Diagnostic> {
    lint_source(src, &LintConfig::default()).unwrap()
}

#[test]
fn weak_isolation_bug_is_flagged_at_the_plain_store() {
    let d = lint(WEAK_ISO_BUG);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].rule, Rule::NonAtomicSharedAccess);
    assert_eq!(d[0].rule.id(), "TL001");
    assert_eq!(d[0].span.snippet(WEAK_ISO_BUG), "acct[7] = 0;");
    assert_eq!(d[0].line, 4);
}

#[test]
fn unsorted_locks_bug_is_flagged_at_the_second_spin() {
    let d = lint(LOCKS_BUG);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].rule, Rule::UnsortedLockAcquisition);
    assert_eq!(d[0].rule.id(), "TL002");
    assert_eq!(d[0].span.snippet(LOCKS_BUG), "while lock[b] { }");
    assert_eq!(d[0].line, 6);
}

#[test]
fn overflow_writeset_bug_is_flagged_at_the_atomic() {
    let d = lint(OVERFLOW_BUG);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].rule, Rule::UnboundedWriteSet);
    assert_eq!(d[0].rule.id(), "TL003");
    assert!(d[0].span.snippet(OVERFLOW_BUG).starts_with("atomic {"));
    assert_eq!(d[0].line, 3);
}

#[test]
fn divergent_atomic_bug_is_flagged_at_the_atomic() {
    let d = lint(DIVERGENT_BUG);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].rule, Rule::DivergentAtomic);
    assert_eq!(d[0].rule.id(), "TL004");
    assert_eq!(d[0].span.snippet(DIVERGENT_BUG), "atomic { tally[0] = tally[0] + 1; }");
    assert_eq!(d[0].line, 3);
}

#[test]
fn footprint_order_bug_is_flagged_at_the_second_atomic() {
    let d = lint(FOOTPRINT_BUG);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].rule, Rule::ConflictingFootprintOrder);
    assert_eq!(d[0].rule.id(), "TL005");
    // Anchored on the later of the two inverted blocks.
    assert_eq!(d[0].line, 7);
    assert!(d[0].message.contains("`from`") && d[0].message.contains("`into`"), "{}", d[0]);
}

#[test]
fn unwakeable_retry_bug_is_flagged_at_the_retry() {
    let d = lint(RETRY_BUG);
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].rule, Rule::UnwakeableRetry);
    assert_eq!(d[0].rule.id(), "TL008");
    assert_eq!(d[0].span.snippet(RETRY_BUG), "retry;");
    assert_eq!(d[0].line, 3);
}

#[test]
fn clean_twins_lint_clean() {
    for (name, src) in [
        ("weak_isolation_clean", WEAK_ISO_CLEAN),
        ("unsorted_locks_clean", LOCKS_CLEAN),
        ("overflow_writeset_clean", OVERFLOW_CLEAN),
        ("divergent_atomic_clean", DIVERGENT_CLEAN),
        ("footprint_order_clean", FOOTPRINT_CLEAN),
        ("unwakeable_retry_clean", RETRY_CLEAN),
    ] {
        let d = lint(src);
        assert!(d.is_empty(), "{name}: {d:?}");
    }
}

#[test]
fn capacity_config_tightens_overflow_rule() {
    // The clean twin writes 2 words; a 1-entry table makes it a finding.
    let d = lint_source(
        OVERFLOW_CLEAN,
        &LintConfig { write_set_capacity: Some(1), ..LintConfig::default() },
    )
    .unwrap();
    assert_eq!(d.len(), 1, "{d:?}");
    assert_eq!(d[0].rule, Rule::UnboundedWriteSet);
    assert!(lint_source(
        OVERFLOW_CLEAN,
        &LintConfig { write_set_capacity: Some(2), ..LintConfig::default() }
    )
    .unwrap()
    .is_empty());
}
