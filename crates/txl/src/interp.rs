//! The TXL executor: a warp-wide, lockstep interpreter running checked
//! kernels on the SIMT simulator over any [`Stm`] runtime.
//!
//! This is where the paper's "compiler support" materialises: the
//! interpreter inserts, automatically,
//!
//! - `TXRead`/`TXWrite` barriers for array accesses inside `atomic`,
//! - the opacity check after every transactional read (lanes whose view
//!   became inconsistent are masked out of the rest of the attempt),
//! - the begin/commit retry loop, and
//! - register checkpoint/restore for the slots chosen by
//!   [`crate::analysis`].
//!
//! Control flow is interpreted with SIMT semantics: `if` splits the active
//! mask, `while` shrinks it per lane until the loop exits, and divergence
//! reconverges at the structured join points — mirroring the hardware's
//! reconvergence stack.

use crate::ast::{BinOp, Expr, Kernel, Stmt};
use crate::error::TxlError;
use gpu_sim::{
    Addr, LaneMask, LaneVals, LaunchConfig, RunReport, Sim, WarpCtx, WarpRng, WARP_SIZE,
};
use gpu_stm::{lane_addrs, Stm, WarpTx};
use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

/// Binds a kernel array parameter to a device allocation.
#[derive(Clone, Debug)]
pub struct ArrayBinding {
    /// Parameter name to bind.
    pub name: String,
    /// Device base address.
    pub addr: Addr,
    /// Length in words (bounds-checked at runtime).
    pub len: u32,
}

impl ArrayBinding {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, addr: Addr, len: u32) -> Self {
        ArrayBinding { name: name.into(), addr, len }
    }
}

struct St<S: Stm> {
    stm: Rc<S>,
    ctx: WarpCtx,
    w: WarpTx,
    locals: Vec<LaneVals>,
    rng: WarpRng,
    arrays: Vec<(Addr, u32)>,
    nthreads: u32,
    in_atomic: bool,
    tx_live: LaneMask,
    /// Lanes that executed `retry;` in the current transaction attempt.
    retrying: LaneMask,
}

impl<S: Stm> St<S> {
    fn effective(&self, mask: LaneMask) -> LaneMask {
        if self.in_atomic {
            mask & self.tx_live
        } else {
            mask
        }
    }

    fn oob(&self, lane: usize, array: usize, index: u32, len: u32) -> TxlError {
        TxlError::Runtime {
            message: format!(
                "array index out of bounds: thread {} indexed parameter #{array} at {index} \
                 (length {len})",
                self.ctx.id().thread_id(lane)
            ),
        }
    }
}

type Fut<'a, T> = Pin<Box<dyn Future<Output = Result<T, TxlError>> + 'a>>;

fn eval<'a, S: Stm>(st: &'a mut St<S>, e: &'a Expr, mask: LaneMask) -> Fut<'a, LaneVals> {
    Box::pin(async move {
        let mask = st.effective(mask);
        let mut out = [0u32; WARP_SIZE];
        if mask.none() {
            return Ok(out);
        }
        match e {
            Expr::Int(v) => {
                for l in mask.iter() {
                    out[l] = *v;
                }
            }
            Expr::Var { slot, .. } => {
                for l in mask.iter() {
                    out[l] = st.locals[*slot][l];
                }
            }
            Expr::Tid => {
                for l in mask.iter() {
                    out[l] = st.ctx.id().thread_id(l);
                }
            }
            Expr::NThreads => {
                for l in mask.iter() {
                    out[l] = st.nthreads;
                }
            }
            Expr::Rand(n) => {
                let n = eval(st, n, mask).await?;
                for l in mask.iter() {
                    out[l] = if n[l] == 0 { 0 } else { st.rng.below(l, n[l]) };
                }
            }
            Expr::Not(inner) => {
                let v = eval(st, inner, mask).await?;
                for l in mask.iter() {
                    out[l] = u32::from(v[l] == 0);
                }
            }
            Expr::Bin { op, lhs, rhs } => {
                let a = eval(st, lhs, mask).await?;
                let b = eval(st, rhs, mask).await?;
                for l in mask.iter() {
                    out[l] = apply_bin(*op, a[l], b[l]);
                }
            }
            Expr::Index { param, index, .. } => {
                let idx = eval(st, index, mask).await?;
                // Re-narrow: the index evaluation may have dropped lanes.
                let mask = st.effective(mask);
                let (base, len) = st.arrays[*param];
                for l in mask.iter() {
                    if idx[l] >= len {
                        return Err(st.oob(l, *param, idx[l], len));
                    }
                }
                let addrs = lane_addrs(mask, |l| base.offset(idx[l]));
                let vals = if st.in_atomic {
                    // Auto-inserted TXRead + opacity check.
                    let stm = Rc::clone(&st.stm);
                    let v = stm.read(&mut st.w, &st.ctx, mask, &addrs).await;
                    st.tx_live &= stm.opaque(&st.w);
                    v
                } else {
                    st.ctx.load(mask, &addrs).await
                };
                for l in mask.iter() {
                    out[l] = vals[l];
                }
            }
        }
        Ok(out)
    })
}

fn apply_bin(op: BinOp, a: u32, b: u32) -> u32 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => a.checked_div(b).unwrap_or(0),
        BinOp::Rem => a.checked_rem(b).unwrap_or(0),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b),
        BinOp::Shr => a.wrapping_shr(b),
        BinOp::Eq => u32::from(a == b),
        BinOp::Ne => u32::from(a != b),
        BinOp::Lt => u32::from(a < b),
        BinOp::Le => u32::from(a <= b),
        BinOp::Gt => u32::from(a > b),
        BinOp::Ge => u32::from(a >= b),
        BinOp::AndAnd => u32::from(a != 0 && b != 0),
        BinOp::OrOr => u32::from(a != 0 || b != 0),
    }
}

fn exec_block<'a, S: Stm>(st: &'a mut St<S>, stmts: &'a [Stmt], mask: LaneMask) -> Fut<'a, ()> {
    Box::pin(async move {
        for stmt in stmts {
            exec_stmt(st, stmt, mask).await?;
        }
        Ok(())
    })
}

fn exec_stmt<'a, S: Stm>(st: &'a mut St<S>, stmt: &'a Stmt, mask: LaneMask) -> Fut<'a, ()> {
    Box::pin(async move {
        let mask = st.effective(mask);
        if mask.none() {
            return Ok(());
        }
        match stmt {
            Stmt::Let { slot, init, .. } | Stmt::Assign { slot, value: init, .. } => {
                let v = eval(st, init, mask).await?;
                let m = st.effective(mask);
                for l in m.iter() {
                    st.locals[*slot][l] = v[l];
                }
                st.ctx.alu(m).await;
            }
            Stmt::Store { param, index, value, .. } => {
                let idx = eval(st, index, mask).await?;
                let val = eval(st, value, mask).await?;
                let m = st.effective(mask);
                if m.none() {
                    return Ok(());
                }
                let (base, len) = st.arrays[*param];
                for l in m.iter() {
                    if idx[l] >= len {
                        return Err(st.oob(l, *param, idx[l], len));
                    }
                }
                let addrs = lane_addrs(m, |l| base.offset(idx[l]));
                if st.in_atomic {
                    // Auto-inserted TXWrite.
                    let stm = Rc::clone(&st.stm);
                    stm.write(&mut st.w, &st.ctx, m, &addrs, &val).await;
                } else {
                    st.ctx.store(m, &addrs, &val).await;
                }
            }
            Stmt::If { cond, then_blk, else_blk, .. } => {
                st.ctx.alu(mask).await;
                let c = eval(st, cond, mask).await?;
                let base = st.effective(mask);
                let taken = base.filter(|l| c[l] != 0);
                // SIMT: both sides execute serially under sub-masks,
                // reconverging afterwards.
                if taken.any() {
                    exec_block(st, then_blk, taken).await?;
                }
                let not_taken = base & !taken;
                if not_taken.any() {
                    exec_block(st, else_blk, not_taken).await?;
                }
            }
            Stmt::While { cond, body, .. } => {
                let mut active = mask;
                loop {
                    active = st.effective(active);
                    if active.none() {
                        break;
                    }
                    st.ctx.alu(active).await;
                    let c = eval(st, cond, active).await?;
                    active = st.effective(active).filter(|l| c[l] != 0);
                    if active.none() {
                        break;
                    }
                    exec_block(st, body, active).await?;
                }
            }
            Stmt::Retry { .. } => {
                // The lane abandons this attempt: it leaves the
                // transaction's live set (skipping the rest of the block,
                // like a doomed lane) and is excluded from commit so the
                // atomic loop respins it — `retry` lowered to
                // abort-and-respin, the same fallback the `Blocking`
                // wrapper uses when parking is unavailable.
                st.ctx.alu(mask).await;
                st.retrying |= mask;
                st.tx_live &= !mask;
            }
            Stmt::Atomic { body, checkpoint, .. } => {
                let mut pending = mask;
                // Everything from begin to commit (including STM metadata
                // traffic) is speculative: the race detector must not pair
                // two transactional accesses (the STM itself orders them).
                st.ctx.set_speculative(true);
                while pending.any() {
                    let stm = Rc::clone(&st.stm);
                    let active = stm.begin(&mut st.w, &st.ctx, pending).await;
                    if active.none() {
                        continue;
                    }
                    // Compiler-inserted register checkpoint (Section 3.2.3).
                    let saved: Vec<(usize, LaneVals)> =
                        checkpoint.iter().map(|s| (*s, st.locals[*s])).collect();
                    st.in_atomic = true;
                    st.tx_live = active;
                    st.retrying = LaneMask::EMPTY;
                    let result = exec_block(st, body, active).await;
                    st.in_atomic = false;
                    result?;
                    // `retry;` lanes abandon the attempt: discard their
                    // buffered speculative state and keep them pending so
                    // they respin once peers have committed.
                    let retrying = st.retrying & active;
                    st.retrying = LaneMask::EMPTY;
                    for l in retrying.iter() {
                        st.w.reset_lane(l);
                    }
                    let committed = stm.commit(&mut st.w, &st.ctx, active & !retrying).await;
                    let undone = (active & !committed) | retrying;
                    if undone.any() {
                        // Restore: neither an aborted nor an abandoned
                        // attempt's register effects may be observable.
                        for (slot, vals) in &saved {
                            for l in undone.iter() {
                                st.locals[*slot][l] = vals[l];
                            }
                        }
                    }
                    pending &= !committed;
                }
                st.ctx.set_speculative(false);
            }
        }
        Ok(())
    })
}

/// Launches a checked TXL kernel on the simulator under the given STM.
///
/// `bindings` supplies a device allocation for every array parameter
/// (matched by name; declared lengths are enforced). `seed` drives
/// `rand()`; runs are deterministic.
///
/// # Errors
///
/// - [`TxlError::Runtime`] for unbound/mis-sized arrays or out-of-bounds
///   accesses (reported with the offending thread id);
/// - [`TxlError::Sim`] for simulator-level failures (watchdog, geometry).
pub fn launch<S: Stm + 'static>(
    sim: &mut Sim,
    stm: &Rc<S>,
    kernel: &Kernel,
    grid: LaunchConfig,
    seed: u64,
    bindings: &[ArrayBinding],
) -> Result<RunReport, TxlError> {
    let mut arrays = Vec::with_capacity(kernel.params.len());
    for p in &kernel.params {
        let b = bindings.iter().find(|b| b.name == p.name).ok_or_else(|| TxlError::Runtime {
            message: format!("no binding supplied for array parameter `{}`", p.name),
        })?;
        if let Some(n) = p.declared_len {
            if b.len != n {
                return Err(TxlError::Runtime {
                    message: format!(
                        "array `{}` declared with length {n} but bound with length {}",
                        p.name, b.len
                    ),
                });
            }
        }
        arrays.push((b.addr, b.len));
    }

    let kernel = Rc::new(kernel.clone());
    let stm = Rc::clone(stm);
    let err_cell: Rc<RefCell<Option<TxlError>>> = Rc::new(RefCell::new(None));
    let nthreads = grid.total_threads() as u32;
    let cell = Rc::clone(&err_cell);
    let launch_result = sim.launch(grid, move |ctx: WarpCtx| {
        let kernel = Rc::clone(&kernel);
        let stm = Rc::clone(&stm);
        let arrays = arrays.clone();
        let cell = Rc::clone(&cell);
        async move {
            let mut st = St {
                w: stm.new_warp(),
                stm,
                rng: WarpRng::new(seed, ctx.id().thread_id(0)),
                locals: vec![[0u32; WARP_SIZE]; kernel.n_slots],
                arrays,
                nthreads,
                in_atomic: false,
                tx_live: LaneMask::FULL,
                retrying: LaneMask::EMPTY,
                ctx: ctx.clone(),
            };
            let mask = ctx.id().launch_mask;
            if let Err(e) = exec_block(&mut st, &kernel.body, mask).await {
                let mut slot = cell.borrow_mut();
                if slot.is_none() {
                    *slot = Some(e);
                }
            }
        }
    });
    // A runtime error inside one warp can strand others (e.g. a held CGL
    // lock) until the watchdog fires; the root cause wins.
    if let Some(e) = err_cell.borrow_mut().take() {
        return Err(e);
    }
    launch_result.map_err(TxlError::from)
}
