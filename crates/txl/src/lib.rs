//! # txl — a tiny transactional GPU-kernel language
//!
//! The GPU-STM paper closes its programming-model discussion with the
//! observation that *"compiler support can further reduce the complexity
//! of GPU-STM programming: (1) log operations and opacity checking can be
//! automatically inserted, and (2) explicit calls to TXRead/Write can be
//! replaced by simple atomic annotations"* (Section 4.1), and that a
//! compiler can infer the registers needing checkpointing across
//! transaction retries (Section 3.2.3). This crate builds exactly that
//! stack for a small C-like kernel language:
//!
//! - a lexer/parser ([`parse`]),
//! - a semantic checker with lexical scoping ([`check`]),
//! - a **register-checkpoint inference** based on liveness and
//!   may/must-definition dataflow analyses ([`analysis`]),
//! - a warp-wide SIMT interpreter ([`launch`]) that auto-inserts the
//!   `TXRead`/`TXWrite` barriers, opacity checks and the retry loop for
//!   `atomic { .. }` blocks, over **any** STM variant.
//!
//! ## Example
//!
//! ```
//! use gpu_sim::{LaunchConfig, Sim, SimConfig};
//! use gpu_stm::{LockStm, StmConfig, StmShared};
//! use txl::{compile, launch, ArrayBinding};
//! use std::rc::Rc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = compile(
//!     "kernel add(counters: array) {
//!          let i = tid() % 16;
//!          atomic { counters[i] = counters[i] + 1; }
//!      }",
//! )?;
//! let mut sim = Sim::new(SimConfig::with_memory(1 << 16));
//! let cfg = StmConfig::new(1 << 8);
//! let shared = StmShared::init(&mut sim, &cfg)?;
//! let counters = sim.alloc(16)?;
//! let stm = Rc::new(LockStm::hv_sorting(shared, cfg));
//! launch(
//!     &mut sim,
//!     &stm,
//!     program.kernel("add").unwrap(),
//!     LaunchConfig::new(2, 64),
//!     7,
//!     &[ArrayBinding::new("counters", counters, 16)],
//! )?;
//! let total: u32 = sim.read_slice(counters, 16).iter().sum();
//! assert_eq!(total, 128); // no lost updates
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod check;
pub mod cost;
mod error;
pub mod fix;
pub mod footprint;
mod interp;
pub mod lint;
pub mod parse;
pub mod patch;
pub mod token;

pub use ast::{Kernel, Program};
pub use cost::{analyze_program, analyze_source, CostConfig, StaticProfile, StmKind, SymBound};
pub use error::TxlError;
pub use fix::{fix_source, plan, AppliedPatch, DynamicReport, FixConfig, FixReport};
pub use footprint::{
    kernel_footprint, thread_footprint, Interval, KernelFootprint, ParamFootprint,
};
pub use interp::{launch, ArrayBinding};
pub use lint::{lint_program, lint_source, lint_source_with_fixes, Diagnostic, LintConfig, Rule};
pub use parse::parse;
pub use patch::{unified_diff, Edit, EditSet, Patch, PatchError};
pub use token::Span;

/// Parses, checks and instruments a TXL program: the full front-end.
///
/// # Errors
///
/// Any [`TxlError`] from lexing, parsing or semantic checking.
pub fn compile(src: &str) -> Result<Program, TxlError> {
    let mut program = parse(src)?;
    check::check_program(&mut program)?;
    Ok(program)
}
