//! Semantic analysis: lexical scoping of locals (resolved to dense
//! slots), array-parameter resolution, and structural rules (no nested
//! `atomic`, no name clashes between locals and arrays).
//!
//! After checking, [`crate::analysis`] annotates each `atomic` block with
//! its register-checkpoint set and the kernel is ready to execute.

use crate::analysis::annotate_checkpoints;
use crate::ast::{Expr, Kernel, Program, Stmt};
use crate::error::TxlError;
use std::collections::HashMap;

/// Checks and resolves every kernel of a program in place, then runs the
/// checkpoint analysis.
///
/// # Errors
///
/// [`TxlError::Check`] on undeclared names, duplicate parameters, local
/// names shadowing array parameters, nested `atomic` blocks, or `retry`
/// outside an `atomic` block.
pub fn check_program(program: &mut Program) -> Result<(), TxlError> {
    for kernel in &mut program.kernels {
        check_kernel(kernel)?;
        annotate_checkpoints(kernel);
    }
    Ok(())
}

struct Checker<'k> {
    kernel_name: &'k str,
    params: HashMap<String, usize>,
    /// Scope stack: each frame maps a name to its slot.
    scopes: Vec<HashMap<String, usize>>,
    n_slots: usize,
    in_atomic: bool,
}

fn check_kernel(kernel: &mut Kernel) -> Result<(), TxlError> {
    let mut params = HashMap::new();
    for (i, p) in kernel.params.iter().enumerate() {
        if params.insert(p.name.clone(), i).is_some() {
            return Err(TxlError::Check {
                kernel: kernel.name.clone(),
                message: format!("duplicate parameter `{}`", p.name),
            });
        }
    }
    let mut ck = Checker {
        kernel_name: &kernel.name,
        params,
        scopes: vec![HashMap::new()],
        n_slots: 0,
        in_atomic: false,
    };
    ck.block(&mut kernel.body)?;
    kernel.n_slots = ck.n_slots;
    Ok(())
}

impl Checker<'_> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, TxlError> {
        Err(TxlError::Check { kernel: self.kernel_name.to_string(), message: message.into() })
    }

    fn lookup(&self, name: &str) -> Option<usize> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn block(&mut self, stmts: &mut [Stmt]) -> Result<(), TxlError> {
        self.scopes.push(HashMap::new());
        for stmt in stmts.iter_mut() {
            self.stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, stmt: &mut Stmt) -> Result<(), TxlError> {
        match stmt {
            Stmt::Let { name, slot, init, .. } => {
                self.expr(init)?;
                if self.params.contains_key(name.as_str()) {
                    return self.err(format!("local `{name}` shadows an array parameter"));
                }
                let s = self.n_slots;
                self.n_slots += 1;
                // Shadowing an outer local is allowed: innermost wins.
                self.scopes.last_mut().expect("scope stack nonempty").insert(name.clone(), s);
                *slot = s;
                Ok(())
            }
            Stmt::Assign { name, slot, value, .. } => {
                self.expr(value)?;
                match self.lookup(name) {
                    Some(s) => {
                        *slot = s;
                        Ok(())
                    }
                    None => self.err(format!("assignment to undeclared variable `{name}`")),
                }
            }
            Stmt::Store { array, param, index, value, .. } => {
                self.expr(index)?;
                self.expr(value)?;
                match self.params.get(array.as_str()) {
                    Some(p) => {
                        *param = *p;
                        Ok(())
                    }
                    None => self.err(format!("store to undeclared array `{array}`")),
                }
            }
            Stmt::If { cond, then_blk, else_blk, .. } => {
                self.expr(cond)?;
                self.block(then_blk)?;
                self.block(else_blk)
            }
            Stmt::While { cond, body, .. } => {
                self.expr(cond)?;
                self.block(body)
            }
            Stmt::Retry { .. } => {
                if !self.in_atomic {
                    return self.err("`retry` outside an `atomic` block".to_string());
                }
                Ok(())
            }
            Stmt::Atomic { body, .. } => {
                if self.in_atomic {
                    return self.err("nested `atomic` blocks are not supported".to_string());
                }
                self.in_atomic = true;
                let r = self.block(body);
                self.in_atomic = false;
                r
            }
        }
    }

    fn expr(&mut self, expr: &mut Expr) -> Result<(), TxlError> {
        match expr {
            Expr::Int(_) | Expr::Tid | Expr::NThreads => Ok(()),
            Expr::Var { name, slot } => match self.lookup(name) {
                Some(s) => {
                    *slot = s;
                    Ok(())
                }
                None => {
                    if self.params.contains_key(name.as_str()) {
                        self.err(format!("array `{name}` used as a scalar (index it with `[..]`)"))
                    } else {
                        self.err(format!("use of undeclared variable `{name}`"))
                    }
                }
            },
            Expr::Index { array, param, index, .. } => {
                self.expr(index)?;
                match self.params.get(array.as_str()) {
                    Some(p) => {
                        *param = *p;
                        Ok(())
                    }
                    None => self.err(format!("read of undeclared array `{array}`")),
                }
            }
            Expr::Bin { lhs, rhs, .. } => {
                self.expr(lhs)?;
                self.expr(rhs)
            }
            Expr::Not(e) | Expr::Rand(e) => self.expr(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn checked(src: &str) -> Result<Program, TxlError> {
        let mut p = parse(src)?;
        check_program(&mut p)?;
        Ok(p)
    }

    #[test]
    fn resolves_slots_and_params() {
        let p = checked("kernel k(a: array) { let x = 1; let y = x + 2; a[y] = x; }").unwrap();
        let k = &p.kernels[0];
        assert_eq!(k.n_slots, 2);
        let Stmt::Store { param, .. } = &k.body[2] else { panic!() };
        assert_eq!(*param, 0);
    }

    #[test]
    fn undeclared_variable_rejected() {
        let err = checked("kernel k() { let x = y; }").unwrap_err();
        assert!(err.to_string().contains("undeclared variable `y`"));
    }

    #[test]
    fn undeclared_array_rejected() {
        let err = checked("kernel k() { let x = a[0]; }").unwrap_err();
        assert!(err.to_string().contains("undeclared array `a`"));
    }

    #[test]
    fn assignment_before_declaration_rejected() {
        let err = checked("kernel k() { x = 3; }").unwrap_err();
        assert!(err.to_string().contains("undeclared"));
    }

    #[test]
    fn nested_atomic_rejected() {
        let err = checked("kernel k() { atomic { atomic { } } }").unwrap_err();
        assert!(err.to_string().contains("nested"));
    }

    #[test]
    fn scoping_block_locals_expire() {
        let err = checked("kernel k() { if 1 { let x = 1; } x = 2; }").unwrap_err();
        assert!(err.to_string().contains("undeclared"));
    }

    #[test]
    fn shadowing_locals_allowed() {
        let p = checked("kernel k() { let x = 1; if 1 { let x = 2; x = 3; } x = 4; }").unwrap();
        assert_eq!(p.kernels[0].n_slots, 2);
    }

    #[test]
    fn local_shadowing_array_rejected() {
        let err = checked("kernel k(a: array) { let a = 1; }").unwrap_err();
        assert!(err.to_string().contains("shadows"));
    }

    #[test]
    fn array_as_scalar_rejected() {
        let err = checked("kernel k(a: array) { let x = a; }").unwrap_err();
        assert!(err.to_string().contains("used as a scalar"));
    }

    #[test]
    fn duplicate_params_rejected() {
        let err = checked("kernel k(a: array, a: array) { }").unwrap_err();
        assert!(err.to_string().contains("duplicate parameter"));
    }
}
