//! `txl` — the TXL tool driver.
//!
//! Usage:
//! ```text
//! txl lint [--capacity N] [--format text|json] <file.txl ...|->
//! txl fix  [--capacity N] [--format text|json] [--diff|--write|--check]
//!          [--max-rounds N] [--no-gate] <file.txl ...|->
//! txl compile <file.txl ...|->               # parse + check only
//! txl analyze [--threads N] [--capacity N] [--format text|json] <file.txl ...|->
//! ```
//!
//! `lint` prints one finding per line (`TLnnn [kernel:line span] message`)
//! followed by the offending source snippet. `--capacity N` supplies the
//! ownership-table size for rule TL003. `--format json` emits one JSON
//! object with a `diagnostics` array (each carrying its `suggested_fix`
//! when the repair engine knows one) instead of the human-readable
//! report.
//!
//! `fix` runs the fix-verify loop ([`txl::fix_source`]) over each file:
//! `--diff` (the default) prints a unified diff of the repair, `--write`
//! rewrites the file in place, and `--check` prints nothing and only
//! sets the exit status — fit for CI. When the repaired program lints
//! clean, the dynamic gate ([`txl::fix::dynamic_check`]) re-runs it on
//! the simulator with the race detector attached; `--no-gate` skips
//! that. `--format json` emits machine-readable patch records.
//!
//! `analyze` runs the static contention & cost analysis
//! ([`txl::analyze_source`]) and prints each file's per-transaction
//! profile, conflict graph, STM-variant ranking and stripe
//! recommendation. `--threads N` sets the modeled thread count (default
//! 256); `--capacity N` caps modeled write-set bounds. The analysis also
//! turns on lint rules TL006/TL007 and reports their findings. `analyze`
//! exits 0 even when contention findings exist — they are advice, not
//! defects; only errors exit nonzero.
//!
//! Exit status, for both `lint` and `fix`:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | clean (lint: no findings; fix: nothing to repair) |
//! | 1    | findings (lint), or pending/residual repairs or gate violations (fix) |
//! | 2    | usage, I/O, or parse/check errors |

use std::io::Read;
use std::process::ExitCode;
use txl::fix::{dynamic_check, fix_source, FixConfig, FixReport};
use txl::lint::{lint_source_with_fixes, Diagnostic, LintConfig};

/// Exit code for parse/IO/usage errors, distinct from findings (1).
const EXIT_ERROR: u8 = 2;
/// Exit code for findings / pending repairs.
const EXIT_FINDINGS: u8 = 1;

fn read_source(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf).map_err(|e| format!("cannot read stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: txl lint [--capacity N] [--format text|json] <file.txl ...|->");
    eprintln!("       txl fix  [--capacity N] [--format text|json] [--diff|--write|--check]");
    eprintln!("                [--max-rounds N] [--no-gate] <file.txl ...|->");
    eprintln!("       txl compile <file.txl ...|->");
    eprintln!(
        "       txl analyze [--threads N] [--capacity N] [--format text|json] <file.txl ...|->"
    );
    ExitCode::from(EXIT_ERROR)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum FixMode {
    Diff,
    Write,
    Check,
}

fn write_patch_json(w: &mut gpu_sim::JsonWriter, p: &txl::Patch) {
    w.begin_object();
    w.field_str("rule", p.rule.id());
    w.field_str("kernel", &p.kernel);
    w.field_str("title", &p.title);
    w.key("edits");
    w.begin_array();
    for e in &p.edits {
        w.begin_object();
        w.field_u64("start", u64::from(e.start));
        w.field_u64("end", u64::from(e.end));
        w.field_str("replacement", &e.replacement);
        w.end_object();
    }
    w.end_array();
    w.end_object();
}

fn write_diag_json(w: &mut gpu_sim::JsonWriter, path: &str, d: &Diagnostic) {
    w.begin_object();
    w.field_str("file", path);
    w.field_str("rule", d.rule.id());
    w.field_str("title", d.rule.title());
    w.field_str("kernel", &d.kernel);
    w.field_u64("line", u64::from(d.line));
    w.field_u64("span_start", u64::from(d.span.start));
    w.field_u64("span_end", u64::from(d.span.end));
    w.field_str("message", &d.message);
    w.field_str("paper_ref", d.rule.paper_ref());
    if let Some(p) = &d.suggested_fix {
        w.key("suggested_fix");
        write_patch_json(w, p);
    }
    w.end_object();
}

/// Serializes every finding (tagged with the file it came from) as one
/// JSON object; field order is stable so the output is diffable.
fn render_lint_json(diags: &[(String, Diagnostic)]) -> String {
    let mut w = gpu_sim::JsonWriter::new();
    w.begin_object();
    w.field_str("tool", "txl-lint");
    w.field_u64("findings", diags.len() as u64);
    w.key("diagnostics");
    w.begin_array();
    for (path, d) in diags {
        write_diag_json(&mut w, path, d);
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// One machine-readable patch record per file: what was applied, what
/// remains, and the dynamic gate's verdict.
fn render_fix_json(results: &[(String, FixReport, Option<txl::DynamicReport>)]) -> String {
    let mut w = gpu_sim::JsonWriter::new();
    w.begin_object();
    w.field_str("tool", "txl-fix");
    w.key("files");
    w.begin_array();
    for (path, r, gate) in results {
        w.begin_object();
        w.field_str("file", path);
        w.field_bool("changed", r.changed());
        w.field_bool("clean", r.is_clean());
        w.field_bool("converged", r.converged);
        w.field_u64("rounds", u64::from(r.rounds));
        w.key("applied");
        w.begin_array();
        for a in &r.applied {
            w.begin_object();
            w.field_u64("round", u64::from(a.round));
            w.field_str("rule", a.diagnostic.rule.id());
            w.field_u64("line", u64::from(a.diagnostic.line));
            w.key("patch");
            write_patch_json(&mut w, &a.patch);
            w.end_object();
        }
        w.end_array();
        w.key("residual");
        w.begin_array();
        for d in &r.residual {
            write_diag_json(&mut w, path, d);
        }
        w.end_array();
        if let Some(g) = gate {
            w.key("dynamic_gate");
            w.begin_object();
            w.field_u64("kernels", g.kernels as u64);
            w.field_bool("clean", g.is_clean());
            w.key("violations");
            w.begin_array();
            for v in &g.violations {
                w.string(v);
            }
            w.end_array();
            w.end_object();
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first().map(String::as_str) else { return usage() };

    let mut cfg = LintConfig::default();
    let mut format = Format::Text;
    let mut fix_mode = FixMode::Diff;
    let mut max_rounds = FixConfig::default().max_rounds;
    let mut gate = true;
    let mut threads = txl::CostConfig::default().threads;
    let mut files: Vec<&str> = Vec::new();
    let mut rest = args[1..].iter();
    while let Some(a) = rest.next() {
        if a == "--threads" {
            let Some(n) = rest.next().and_then(|v| v.parse::<u32>().ok()).filter(|&n| n > 0) else {
                eprintln!("txl: --threads needs a positive integer argument");
                return ExitCode::from(EXIT_ERROR);
            };
            threads = n;
        } else if a == "--capacity" {
            let Some(n) = rest.next().and_then(|v| v.parse::<u32>().ok()) else {
                eprintln!("txl: --capacity needs an integer argument");
                return ExitCode::from(EXIT_ERROR);
            };
            cfg.write_set_capacity = Some(n);
        } else if a == "--max-rounds" {
            let Some(n) = rest.next().and_then(|v| v.parse::<u32>().ok()) else {
                eprintln!("txl: --max-rounds needs an integer argument");
                return ExitCode::from(EXIT_ERROR);
            };
            max_rounds = n;
        } else if a == "--format" {
            match rest.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                _ => {
                    eprintln!("txl: --format needs `text` or `json`");
                    return ExitCode::from(EXIT_ERROR);
                }
            }
        } else if a == "--diff" {
            fix_mode = FixMode::Diff;
        } else if a == "--write" {
            fix_mode = FixMode::Write;
        } else if a == "--check" {
            fix_mode = FixMode::Check;
        } else if a == "--no-gate" {
            gate = false;
        } else if a.starts_with("--") {
            eprintln!("txl: unknown option {a}");
            return ExitCode::from(EXIT_ERROR);
        } else {
            files.push(a);
        }
    }
    if files.is_empty() {
        return usage();
    }

    match mode {
        "compile" => run_compile(&files),
        "lint" => run_lint(&files, &cfg, format),
        "fix" => run_fix(&files, &cfg, format, fix_mode, max_rounds, gate),
        "analyze" => run_analyze(&files, &cfg, threads, format),
        _ => usage(),
    }
}

fn run_analyze(files: &[&str], cfg: &LintConfig, threads: u32, format: Format) -> ExitCode {
    let cost_cfg = txl::CostConfig { threads, write_set_capacity: cfg.write_set_capacity };
    // The analysis doubles as the trigger for the contention lint rules.
    let lint_cfg = LintConfig {
        hot_degree: Some(0.5),
        flag_read_only: true,
        write_set_capacity: cfg.write_set_capacity,
    };
    let mut json = gpu_sim::JsonWriter::new();
    json.begin_object();
    json.field_str("tool", "txl-analyze");
    json.field_u64("threads", u64::from(threads));
    json.key("files");
    json.begin_array();
    for path in files {
        let source = match read_source(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("txl: {e}");
                return ExitCode::from(EXIT_ERROR);
            }
        };
        let profile = match txl::analyze_source(&source, &cost_cfg) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::from(EXIT_ERROR);
            }
        };
        let diags = match txl::lint::lint_source(&source, &lint_cfg) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::from(EXIT_ERROR);
            }
        };
        let contention: Vec<&Diagnostic> =
            diags.iter().filter(|d| matches!(d.rule.id(), "TL006" | "TL007")).collect();
        match format {
            Format::Text => {
                println!("{path}:");
                for line in txl::cost::render_text(&profile).lines() {
                    println!("  {line}");
                }
                for d in &contention {
                    println!("  {d}");
                }
            }
            Format::Json => {
                json.begin_object();
                json.field_str("file", path);
                json.key("profile");
                json.begin_object();
                txl::cost::write_profile_json(&mut json, &profile);
                json.end_object();
                json.key("findings");
                json.begin_array();
                for d in &contention {
                    write_diag_json(&mut json, path, d);
                }
                json.end_array();
                json.end_object();
            }
        }
    }
    json.end_array();
    json.end_object();
    if format == Format::Json {
        println!("{}", json.finish());
    }
    ExitCode::SUCCESS
}

fn run_compile(files: &[&str]) -> ExitCode {
    for path in files {
        let source = match read_source(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("txl: {e}");
                return ExitCode::from(EXIT_ERROR);
            }
        };
        match txl::compile(&source) {
            Ok(p) => println!("{path}: ok ({} kernel(s))", p.kernels.len()),
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::from(EXIT_ERROR);
            }
        }
    }
    ExitCode::SUCCESS
}

fn run_lint(files: &[&str], cfg: &LintConfig, format: Format) -> ExitCode {
    let mut findings: Vec<(String, Diagnostic)> = Vec::new();
    for path in files {
        let source = match read_source(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("txl: {e}");
                return ExitCode::from(EXIT_ERROR);
            }
        };
        match lint_source_with_fixes(&source, cfg) {
            Ok(diags) => {
                for d in diags {
                    if format == Format::Text {
                        println!("{path}: {d}");
                        let snippet = d.span.snippet(&source);
                        if !snippet.is_empty() {
                            // Show only the first line of multi-line spans.
                            let first = snippet.lines().next().unwrap_or(snippet);
                            println!("    | {first}");
                        }
                        println!("    = note: {} — {}", d.rule.title(), d.rule.paper_ref());
                        if let Some(p) = &d.suggested_fix {
                            println!("    = fix: {}", p.title);
                        }
                    }
                    findings.push((path.to_string(), d));
                }
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::from(EXIT_ERROR);
            }
        }
    }
    match format {
        Format::Json => println!("{}", render_lint_json(&findings)),
        Format::Text if findings.is_empty() => println!("txl lint: clean"),
        Format::Text => println!("txl lint: {} finding(s)", findings.len()),
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_FINDINGS)
    }
}

fn run_fix(
    files: &[&str],
    cfg: &LintConfig,
    format: Format,
    mode: FixMode,
    max_rounds: u32,
    gate: bool,
) -> ExitCode {
    let fix_cfg = FixConfig { lint: cfg.clone(), max_rounds };
    let mut results: Vec<(String, FixReport, Option<txl::DynamicReport>)> = Vec::new();
    let mut dirty = false;
    for path in files {
        let source = match read_source(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("txl: {e}");
                return ExitCode::from(EXIT_ERROR);
            }
        };
        let report = match fix_source(&source, &fix_cfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::from(EXIT_ERROR);
            }
        };
        // The dynamic half of the gate only makes sense on a program the
        // static loop believes is repaired; a still-buggy program may
        // legitimately deadlock the simulator.
        let dyn_report = if gate && report.is_clean() {
            match dynamic_check(&report.fixed, 7) {
                Ok(g) => Some(g),
                Err(e) => {
                    eprintln!("{path}: dynamic gate: {e}");
                    return ExitCode::from(EXIT_ERROR);
                }
            }
        } else {
            None
        };

        let gate_dirty = dyn_report.as_ref().is_some_and(|g| !g.is_clean());
        let needs_work = match mode {
            FixMode::Check => report.changed() || !report.is_clean() || gate_dirty,
            _ => !report.is_clean() || gate_dirty,
        };
        dirty |= needs_work;

        match mode {
            FixMode::Write if report.changed() => {
                if *path == "-" {
                    eprintln!("txl: cannot --write to stdin");
                    return ExitCode::from(EXIT_ERROR);
                }
                if let Err(e) = std::fs::write(path, &report.fixed) {
                    eprintln!("txl: cannot write {path}: {e}");
                    return ExitCode::from(EXIT_ERROR);
                }
            }
            _ => {}
        }
        if format == Format::Text {
            match mode {
                FixMode::Diff => {
                    let d = report.diff(path);
                    if !d.is_empty() {
                        print!("{d}");
                    }
                }
                FixMode::Write if report.changed() => {
                    println!(
                        "{path}: applied {} patch(es) in {} round(s)",
                        report.applied.len(),
                        report.rounds
                    );
                }
                _ => {}
            }
            for d in &report.residual {
                println!("{path}: residual {d}");
            }
            if let Some(g) = &dyn_report {
                for v in &g.violations {
                    println!("{path}: dynamic {v}");
                }
            }
        }
        results.push((path.to_string(), report, dyn_report));
    }
    if format == Format::Json {
        println!("{}", render_fix_json(&results));
    } else {
        let applied: usize = results.iter().map(|(_, r, _)| r.applied.len()).sum();
        let residual: usize = results.iter().map(|(_, r, _)| r.residual.len()).sum();
        println!(
            "txl fix: {applied} patch(es), {residual} residual finding(s) across {} file(s)",
            results.len()
        );
    }
    if dirty {
        ExitCode::from(EXIT_FINDINGS)
    } else {
        ExitCode::SUCCESS
    }
}
