//! `txl` — the TXL tool driver.
//!
//! Usage:
//! ```text
//! txl lint [--capacity N] <file.txl ...|->   # run the tm-lint pass
//! txl compile <file.txl ...|->               # parse + check only
//! ```
//!
//! `lint` prints one finding per line (`TLnnn [kernel:line span] message`)
//! followed by the offending source snippet, and exits nonzero when any
//! finding is produced, so it can gate CI. `--capacity N` supplies the
//! ownership-table size for rule TL003. A file named `-` reads stdin.

use std::io::Read;
use std::process::ExitCode;
use txl::lint::{lint_source, LintConfig};

fn read_source(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf).map_err(|e| format!("cannot read stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: txl lint [--capacity N] <file.txl ...|->");
    eprintln!("       txl compile <file.txl ...|->");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first().map(String::as_str) else { return usage() };

    let mut cfg = LintConfig::default();
    let mut files: Vec<&str> = Vec::new();
    let mut rest = args[1..].iter();
    while let Some(a) = rest.next() {
        if a == "--capacity" {
            let Some(n) = rest.next().and_then(|v| v.parse::<u32>().ok()) else {
                eprintln!("txl: --capacity needs an integer argument");
                return ExitCode::FAILURE;
            };
            cfg.write_set_capacity = Some(n);
        } else {
            files.push(a);
        }
    }
    if files.is_empty() {
        return usage();
    }

    let mut findings = 0usize;
    for path in files {
        let source = match read_source(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("txl: {e}");
                return ExitCode::FAILURE;
            }
        };
        match mode {
            "compile" => match txl::compile(&source) {
                Ok(p) => println!("{path}: ok ({} kernel(s))", p.kernels.len()),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            "lint" => match lint_source(&source, &cfg) {
                Ok(diags) => {
                    for d in &diags {
                        println!("{path}: {d}");
                        let snippet = d.span.snippet(&source);
                        if !snippet.is_empty() {
                            // Show only the first line of multi-line spans.
                            let first = snippet.lines().next().unwrap_or(snippet);
                            println!("    | {first}");
                        }
                        println!("    = note: {} — {}", d.rule.title(), d.rule.paper_ref());
                    }
                    findings += diags.len();
                }
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            _ => return usage(),
        }
    }
    if mode == "lint" {
        if findings == 0 {
            println!("txl lint: clean");
            ExitCode::SUCCESS
        } else {
            println!("txl lint: {findings} finding(s)");
            ExitCode::FAILURE
        }
    } else {
        ExitCode::SUCCESS
    }
}
