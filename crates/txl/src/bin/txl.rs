//! `txl` — the TXL tool driver.
//!
//! Usage:
//! ```text
//! txl lint [--capacity N] [--format text|json] <file.txl ...|->
//! txl compile <file.txl ...|->               # parse + check only
//! ```
//!
//! `lint` prints one finding per line (`TLnnn [kernel:line span] message`)
//! followed by the offending source snippet, and exits nonzero when any
//! finding is produced, so it can gate CI. `--capacity N` supplies the
//! ownership-table size for rule TL003. `--format json` emits one JSON
//! object with a `diagnostics` array instead of the human-readable report
//! (the exit status is the same either way). A file named `-` reads stdin.

use std::io::Read;
use std::process::ExitCode;
use txl::lint::{lint_source, Diagnostic, LintConfig};

fn read_source(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf).map_err(|e| format!("cannot read stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: txl lint [--capacity N] [--format text|json] <file.txl ...|->");
    eprintln!("       txl compile <file.txl ...|->");
    ExitCode::FAILURE
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

/// Serializes every finding (tagged with the file it came from) as one
/// JSON object; field order is stable so the output is diffable.
fn render_json(diags: &[(String, Diagnostic)]) -> String {
    let mut w = gpu_sim::JsonWriter::new();
    w.begin_object();
    w.field_str("tool", "txl-lint");
    w.field_u64("findings", diags.len() as u64);
    w.key("diagnostics");
    w.begin_array();
    for (path, d) in diags {
        w.begin_object();
        w.field_str("file", path);
        w.field_str("rule", d.rule.id());
        w.field_str("title", d.rule.title());
        w.field_str("kernel", &d.kernel);
        w.field_u64("line", u64::from(d.line));
        w.field_u64("span_start", u64::from(d.span.start));
        w.field_u64("span_end", u64::from(d.span.end));
        w.field_str("message", &d.message);
        w.field_str("paper_ref", d.rule.paper_ref());
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(mode) = args.first().map(String::as_str) else { return usage() };

    let mut cfg = LintConfig::default();
    let mut format = Format::Text;
    let mut files: Vec<&str> = Vec::new();
    let mut rest = args[1..].iter();
    while let Some(a) = rest.next() {
        if a == "--capacity" {
            let Some(n) = rest.next().and_then(|v| v.parse::<u32>().ok()) else {
                eprintln!("txl: --capacity needs an integer argument");
                return ExitCode::FAILURE;
            };
            cfg.write_set_capacity = Some(n);
        } else if a == "--format" {
            match rest.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                _ => {
                    eprintln!("txl: --format needs `text` or `json`");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            files.push(a);
        }
    }
    if files.is_empty() {
        return usage();
    }

    let mut findings: Vec<(String, Diagnostic)> = Vec::new();
    for path in files {
        let source = match read_source(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("txl: {e}");
                return ExitCode::FAILURE;
            }
        };
        match mode {
            "compile" => match txl::compile(&source) {
                Ok(p) => println!("{path}: ok ({} kernel(s))", p.kernels.len()),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            "lint" => match lint_source(&source, &cfg) {
                Ok(diags) => {
                    for d in diags {
                        if format == Format::Text {
                            println!("{path}: {d}");
                            let snippet = d.span.snippet(&source);
                            if !snippet.is_empty() {
                                // Show only the first line of multi-line spans.
                                let first = snippet.lines().next().unwrap_or(snippet);
                                println!("    | {first}");
                            }
                            println!("    = note: {} — {}", d.rule.title(), d.rule.paper_ref());
                        }
                        findings.push((path.to_string(), d));
                    }
                }
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            _ => return usage(),
        }
    }
    if mode == "lint" {
        match format {
            Format::Json => println!("{}", render_json(&findings)),
            Format::Text if findings.is_empty() => println!("txl lint: clean"),
            Format::Text => println!("txl lint: {} finding(s)", findings.len()),
        }
        if findings.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    } else {
        ExitCode::SUCCESS
    }
}
