//! `txlc` — the TXL compiler driver: parses, checks and reports on TXL
//! source, printing each kernel's signature, local-slot count, and the
//! register-checkpoint set inferred for every `atomic` block.
//!
//! Usage:
//! ```text
//! txlc <file.txl>     # compile a file
//! txlc -              # compile stdin
//! ```
//! Exits nonzero (with a diagnostic on stderr) on any error.

use std::io::Read;
use std::process::ExitCode;
use txl::ast::{Kernel, Stmt};

fn collect_atomics<'k>(stmts: &'k [Stmt], out: &mut Vec<&'k Stmt>) {
    for s in stmts {
        match s {
            Stmt::Atomic { .. } => out.push(s),
            Stmt::If { then_blk, else_blk, .. } => {
                collect_atomics(then_blk, out);
                collect_atomics(else_blk, out);
            }
            Stmt::While { body, .. } => collect_atomics(body, out),
            _ => {}
        }
    }
}

fn slot_names(kernel: &Kernel) -> Vec<String> {
    // Recover slot -> name for diagnostics by walking declarations.
    let mut names = vec![String::new(); kernel.n_slots];
    fn walk(stmts: &[Stmt], names: &mut [String]) {
        for s in stmts {
            match s {
                Stmt::Let { name, slot, .. } if names[*slot].is_empty() => {
                    names[*slot] = name.clone();
                }
                Stmt::If { then_blk, else_blk, .. } => {
                    walk(then_blk, names);
                    walk(else_blk, names);
                }
                Stmt::While { body, .. } => walk(body, names),
                Stmt::Atomic { body, .. } => walk(body, names),
                _ => {}
            }
        }
    }
    walk(&kernel.body, &mut names);
    names
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let Some(path) = args.get(1) else {
        eprintln!("usage: txlc <file.txl | ->");
        return ExitCode::FAILURE;
    };
    let source = if path == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("txlc: cannot read stdin: {e}");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("txlc: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let program = match txl::compile(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("txlc: {e}");
            return ExitCode::FAILURE;
        }
    };

    for kernel in &program.kernels {
        let params: Vec<String> = kernel
            .params
            .iter()
            .map(|p| match p.declared_len {
                Some(n) => format!("{}: array[{n}]", p.name),
                None => format!("{}: array", p.name),
            })
            .collect();
        println!("kernel {}({})", kernel.name, params.join(", "));
        println!("  locals: {} slot(s)", kernel.n_slots);
        let mut atomics = Vec::new();
        collect_atomics(&kernel.body, &mut atomics);
        let names = slot_names(kernel);
        if atomics.is_empty() {
            println!("  atomic blocks: none");
        }
        for (i, a) in atomics.iter().enumerate() {
            let Stmt::Atomic { checkpoint, .. } = a else { unreachable!() };
            let pretty: Vec<&str> = checkpoint
                .iter()
                .map(|s| names.get(*s).map(|n| n.as_str()).unwrap_or("?"))
                .collect();
            println!(
                "  atomic #{i}: checkpoint registers {{{}}}",
                if pretty.is_empty() { "∅".to_string() } else { pretty.join(", ") }
            );
        }
    }
    println!("ok: {} kernel(s) compiled", program.kernels.len());
    ExitCode::SUCCESS
}
