//! Lexer for TXL source text.

use crate::error::TxlError;
use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Integer literal.
    Int(u32),
    /// Identifier.
    Ident(String),
    /// `kernel`
    Kernel,
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `atomic`
    Atomic,
    /// `retry`
    Retry,
    /// `array`
    Array,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Ident(s) => write!(f, "{s}"),
            other => {
                let s = match other {
                    Tok::Kernel => "kernel",
                    Tok::Let => "let",
                    Tok::If => "if",
                    Tok::Else => "else",
                    Tok::While => "while",
                    Tok::Atomic => "atomic",
                    Tok::Retry => "retry",
                    Tok::Array => "array",
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBrace => "{",
                    Tok::RBrace => "}",
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::Comma => ",",
                    Tok::Semi => ";",
                    Tok::Colon => ":",
                    Tok::Assign => "=",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::Star => "*",
                    Tok::Slash => "/",
                    Tok::Percent => "%",
                    Tok::Amp => "&",
                    Tok::Pipe => "|",
                    Tok::Caret => "^",
                    Tok::Shl => "<<",
                    Tok::Shr => ">>",
                    Tok::Eq => "==",
                    Tok::Ne => "!=",
                    Tok::Lt => "<",
                    Tok::Le => "<=",
                    Tok::Gt => ">",
                    Tok::Ge => ">=",
                    Tok::AndAnd => "&&",
                    Tok::OrOr => "||",
                    Tok::Bang => "!",
                    Tok::Int(_) | Tok::Ident(_) => unreachable!(),
                };
                f.write_str(s)
            }
        }
    }
}

/// A half-open byte range `[start, end)` into the source text, plus the
/// 1-based line its start falls on. Spans survive the whole pipeline:
/// the lexer stamps them on tokens, the parser merges them onto AST
/// nodes and parse errors, and the linter reports them in diagnostics.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
    /// 1-based source line of `start`.
    pub line: u32,
}

impl Span {
    /// A span covering nothing (used for synthesized nodes).
    pub const DUMMY: Span = Span { start: 0, end: 0, line: 0 };

    /// The smallest span covering both `self` and `other`.
    #[must_use]
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: if other.line != 0 && other.line < self.line { other.line } else { self.line },
        }
    }

    /// The source text this span covers.
    pub fn snippet<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start as usize..self.end as usize).unwrap_or("")
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A token plus its source span (for diagnostics).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Source bytes the token occupies.
    pub span: Span,
}

/// Tokenises TXL source. `//` starts a line comment.
///
/// # Errors
///
/// Returns [`TxlError::Lex`] on an unexpected character or an integer
/// literal out of `u32` range.
pub fn lex(src: &str) -> Result<Vec<Spanned>, TxlError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let span = Span { start: start as u32, end: i as u32, line };
                let v: u32 = text.parse().map_err(|_| TxlError::Lex {
                    line,
                    span,
                    message: format!("integer literal `{text}` out of range"),
                })?;
                out.push(Spanned { tok: Tok::Int(v), span });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match word {
                    "kernel" => Tok::Kernel,
                    "let" => Tok::Let,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "atomic" => Tok::Atomic,
                    "retry" => Tok::Retry,
                    "array" => Tok::Array,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(Spanned { tok, span: Span { start: start as u32, end: i as u32, line } });
            }
            _ => {
                let (tok, len) = match (c, bytes.get(i + 1).map(|b| *b as char)) {
                    ('<', Some('<')) => (Tok::Shl, 2),
                    ('>', Some('>')) => (Tok::Shr, 2),
                    ('=', Some('=')) => (Tok::Eq, 2),
                    ('!', Some('=')) => (Tok::Ne, 2),
                    ('<', Some('=')) => (Tok::Le, 2),
                    ('>', Some('=')) => (Tok::Ge, 2),
                    ('&', Some('&')) => (Tok::AndAnd, 2),
                    ('|', Some('|')) => (Tok::OrOr, 2),
                    ('(', _) => (Tok::LParen, 1),
                    (')', _) => (Tok::RParen, 1),
                    ('{', _) => (Tok::LBrace, 1),
                    ('}', _) => (Tok::RBrace, 1),
                    ('[', _) => (Tok::LBracket, 1),
                    (']', _) => (Tok::RBracket, 1),
                    (',', _) => (Tok::Comma, 1),
                    (';', _) => (Tok::Semi, 1),
                    (':', _) => (Tok::Colon, 1),
                    ('=', _) => (Tok::Assign, 1),
                    ('+', _) => (Tok::Plus, 1),
                    ('-', _) => (Tok::Minus, 1),
                    ('*', _) => (Tok::Star, 1),
                    ('/', _) => (Tok::Slash, 1),
                    ('%', _) => (Tok::Percent, 1),
                    ('&', _) => (Tok::Amp, 1),
                    ('|', _) => (Tok::Pipe, 1),
                    ('^', _) => (Tok::Caret, 1),
                    ('<', _) => (Tok::Lt, 1),
                    ('>', _) => (Tok::Gt, 1),
                    ('!', _) => (Tok::Bang, 1),
                    _ => {
                        return Err(TxlError::Lex {
                            line,
                            span: Span { start: i as u32, end: i as u32 + 1, line },
                            message: format!("unexpected character `{c}`"),
                        })
                    }
                };
                out.push(Spanned {
                    tok,
                    span: Span { start: i as u32, end: (i + len) as u32, line },
                });
                i += len;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("kernel foo atomic barx"),
            vec![Tok::Kernel, Tok::Ident("foo".into()), Tok::Atomic, Tok::Ident("barx".into())]
        );
    }

    #[test]
    fn numbers_and_operators() {
        assert_eq!(
            toks("1 + 23 << 4 >= 5 && x"),
            vec![
                Tok::Int(1),
                Tok::Plus,
                Tok::Int(23),
                Tok::Shl,
                Tok::Int(4),
                Tok::Ge,
                Tok::Int(5),
                Tok::AndAnd,
                Tok::Ident("x".into())
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let ts = lex("a // comment\nb").unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].span.line, 1);
        assert_eq!(ts[1].span.line, 2);
    }

    #[test]
    fn spans_cover_token_bytes() {
        let src = "let abc = 42;";
        let ts = lex(src).unwrap();
        assert_eq!(ts[0].span.snippet(src), "let");
        assert_eq!(ts[1].span.snippet(src), "abc");
        assert_eq!(ts[2].span.snippet(src), "=");
        assert_eq!(ts[3].span.snippet(src), "42");
        assert_eq!(ts[4].span.snippet(src), ";");
    }

    #[test]
    fn lex_error_carries_span() {
        let src = "ab $ cd";
        match lex(src).unwrap_err() {
            TxlError::Lex { span, line, .. } => {
                assert_eq!(span.snippet(src), "$");
                assert_eq!(line, 1);
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn span_merge_covers_both() {
        let a = Span { start: 2, end: 5, line: 1 };
        let b = Span { start: 8, end: 12, line: 2 };
        assert_eq!(a.to(b), Span { start: 2, end: 12, line: 1 });
        assert_eq!(b.to(a), Span { start: 2, end: 12, line: 1 });
    }

    #[test]
    fn overflow_literal_rejected() {
        assert!(matches!(lex("99999999999999"), Err(TxlError::Lex { .. })));
    }

    #[test]
    fn unexpected_char_rejected() {
        let err = lex("a $ b").unwrap_err();
        assert!(err.to_string().contains('$'));
    }

    #[test]
    fn display_roundtrip_samples() {
        for t in [Tok::Shl, Tok::AndAnd, Tok::Kernel, Tok::Int(7)] {
            assert!(!t.to_string().is_empty());
        }
    }
}
