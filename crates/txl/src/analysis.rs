//! Register-checkpoint inference: the dataflow analysis the paper assigns
//! to "a compiler \[that\] can determine which registers are both read and
//! written within a transaction and insert code to checkpoint and restore
//! them" (Section 3.2.3).
//!
//! A local slot written inside an `atomic` block must be restored when the
//! transaction retries iff its pre-transaction value is still observable:
//!
//! - it is **read before being written** inside the block (the retry would
//!   otherwise see a value from the aborted attempt), or
//! - it is **live after** the block but only **may** (not must) be written
//!   inside it (a retry taking a different path would leak the aborted
//!   attempt's value).
//!
//! Formally, with `mayDef`/`mustDef` the may/must-assigned slot sets of the
//! block, `UE` its upward-exposed uses, and `liveOut` the live-variable set
//! after the block:
//!
//! ```text
//! checkpoint = mayDef ∩ (UE ∪ (liveOut ∖ mustDef))
//! ```
//!
//! Liveness is a standard backward analysis over the structured AST
//! (`while` iterates to a fixpoint); may/must-def are forward syntactic
//! passes (`if` takes union/intersection, `while` bodies may run zero
//! times so contribute nothing to `mustDef`).

use crate::ast::{Expr, Kernel, Stmt};
use std::collections::BTreeSet;

type Slots = BTreeSet<usize>;

fn expr_uses(e: &Expr, out: &mut Slots) {
    match e {
        Expr::Int(_) | Expr::Tid | Expr::NThreads => {}
        Expr::Var { slot, .. } => {
            out.insert(*slot);
        }
        Expr::Index { index, .. } => expr_uses(index, out),
        Expr::Bin { lhs, rhs, .. } => {
            expr_uses(lhs, out);
            expr_uses(rhs, out);
        }
        Expr::Not(e) | Expr::Rand(e) => expr_uses(e, out),
    }
}

/// Backward liveness through a statement: given the live set after it,
/// returns the live set before it.
fn live_stmt(stmt: &Stmt, mut live: Slots) -> Slots {
    match stmt {
        Stmt::Let { slot, init, .. } | Stmt::Assign { slot, value: init, .. } => {
            live.remove(slot);
            expr_uses(init, &mut live);
            live
        }
        Stmt::Store { index, value, .. } => {
            expr_uses(index, &mut live);
            expr_uses(value, &mut live);
            live
        }
        Stmt::If { cond, then_blk, else_blk, .. } => {
            let mut before = live_block(then_blk, live.clone());
            before.extend(live_block(else_blk, live));
            expr_uses(cond, &mut before);
            before
        }
        Stmt::While { cond, body, .. } => {
            // Fixpoint: the body may execute any number of times.
            let mut current = live;
            loop {
                let mut next = current.clone();
                expr_uses(cond, &mut next);
                next.extend(live_block(body, current.clone()));
                if next == current {
                    return current;
                }
                current = next;
            }
        }
        // `retry` neither uses nor defines locals (the abandoned
        // attempt's register state is restored from the checkpoint).
        Stmt::Retry { .. } => live,
        Stmt::Atomic { body, .. } => live_block(body, live),
    }
}

/// Backward liveness through a block.
fn live_block(stmts: &[Stmt], mut live: Slots) -> Slots {
    for stmt in stmts.iter().rev() {
        live = live_stmt(stmt, live);
    }
    live
}

/// Slots that *may* be assigned somewhere in a block.
fn may_def_block(stmts: &[Stmt]) -> Slots {
    let mut out = Slots::new();
    for stmt in stmts {
        match stmt {
            Stmt::Let { slot, .. } | Stmt::Assign { slot, .. } => {
                out.insert(*slot);
            }
            Stmt::Store { .. } | Stmt::Retry { .. } => {}
            Stmt::If { then_blk, else_blk, .. } => {
                out.extend(may_def_block(then_blk));
                out.extend(may_def_block(else_blk));
            }
            Stmt::While { body, .. } => out.extend(may_def_block(body)),
            Stmt::Atomic { body, .. } => out.extend(may_def_block(body)),
        }
    }
    out
}

/// Slots assigned on *every* path through a block.
fn must_def_block(stmts: &[Stmt]) -> Slots {
    let mut out = Slots::new();
    for stmt in stmts {
        match stmt {
            Stmt::Let { slot, .. } | Stmt::Assign { slot, .. } => {
                out.insert(*slot);
            }
            Stmt::Store { .. } | Stmt::Retry { .. } => {}
            Stmt::If { then_blk, else_blk, .. } => {
                let t = must_def_block(then_blk);
                let e = must_def_block(else_blk);
                out.extend(t.intersection(&e).copied());
            }
            Stmt::While { .. } => {} // may run zero times
            Stmt::Atomic { body, .. } => out.extend(must_def_block(body)),
        }
    }
    out
}

/// Upward-exposed uses of a block: slots read before any assignment on
/// some path — exactly `liveIn(block)` with an empty after-set.
fn upward_exposed(stmts: &[Stmt]) -> Slots {
    live_block(stmts, Slots::new())
}

/// Annotates every `atomic` block of `kernel` with its checkpoint set.
/// Must run after [`crate::check::check_program`] resolves slots.
pub fn annotate_checkpoints(kernel: &mut Kernel) {
    // The live set after each atomic is discovered during one backward
    // traversal that rewrites checkpoint annotations as it goes.
    fn walk_block(stmts: &mut [Stmt], mut live: Slots) -> Slots {
        for stmt in stmts.iter_mut().rev() {
            if let Stmt::Atomic { body, checkpoint, .. } = stmt {
                let live_out = live.clone();
                let may = may_def_block(body);
                let must = must_def_block(body);
                let ue = upward_exposed(body);
                let mut need: Slots = Slots::new();
                for s in &may {
                    let escapes = live_out.contains(s) && !must.contains(s);
                    if ue.contains(s) || escapes {
                        need.insert(*s);
                    }
                }
                *checkpoint = need.into_iter().collect();
            } else if let Stmt::If { then_blk, else_blk, .. } = stmt {
                // Recurse for atomics nested under control flow.
                let after = live.clone();
                walk_block(then_blk, after.clone());
                walk_block(else_blk, after);
            } else if let Stmt::While { .. } = stmt {
                // Live-after of an atomic inside a loop includes the loop's
                // own live-in (the next iteration); use the fixpoint set.
                let fix = live_stmt(&stmt.clone(), live.clone());
                let mut inner_after = live.clone();
                inner_after.extend(fix);
                let Stmt::While { body, .. } = stmt else { unreachable!() };
                walk_block(body, inner_after);
            }
            live = live_stmt(stmt, live);
        }
        live
    }
    walk_block(&mut kernel.body, Slots::new());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_program;
    use crate::parse::parse;

    /// Compiles and returns the checkpoint slots of the first atomic block
    /// found, mapped back to variable names for readability.
    fn checkpoints(src: &str) -> Vec<usize> {
        let mut p = parse(src).unwrap();
        check_program(&mut p).unwrap();
        fn find(stmts: &[Stmt]) -> Option<Vec<usize>> {
            for s in stmts {
                match s {
                    Stmt::Atomic { checkpoint, .. } => return Some(checkpoint.clone()),
                    Stmt::If { then_blk, else_blk, .. } => {
                        if let Some(c) = find(then_blk).or_else(|| find(else_blk)) {
                            return Some(c);
                        }
                    }
                    Stmt::While { body, .. } => {
                        if let Some(c) = find(body) {
                            return Some(c);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        find(&p.kernels[0].body).expect("kernel has an atomic block")
    }

    #[test]
    fn read_modify_write_is_checkpointed() {
        // x (slot 0) is read before written inside the transaction.
        let c = checkpoints("kernel k(a: array) { let x = 0; atomic { x = x + 1; } a[0] = x; }");
        assert_eq!(c, vec![0]);
    }

    #[test]
    fn unconditional_overwrite_is_not_checkpointed() {
        // x is must-defined before any read: a retry recomputes it.
        let c =
            checkpoints("kernel k(a: array) { let x = 0; atomic { x = 5; a[x] = 1; } a[0] = x; }");
        assert!(c.is_empty(), "got {c:?}");
    }

    #[test]
    fn conditional_write_live_out_is_checkpointed() {
        // x may or may not be written; it is observed afterwards.
        let c = checkpoints(
            "kernel k(a: array) { let x = 0; atomic { if a[0] { x = 1; } } a[1] = x; }",
        );
        assert_eq!(c, vec![0]);
    }

    #[test]
    fn conditional_write_dead_after_is_not_checkpointed() {
        let c = checkpoints("kernel k(a: array) { let x = 0; atomic { if a[0] { x = 1; } } }");
        assert!(c.is_empty(), "got {c:?}");
    }

    #[test]
    fn transaction_local_temp_is_not_checkpointed() {
        // t is declared inside the atomic: it has no pre-state to restore.
        let c = checkpoints("kernel k(a: array) { atomic { let t = a[0]; a[1] = t + 1; } }");
        assert!(c.is_empty(), "got {c:?}");
    }

    #[test]
    fn loop_carried_variable_is_checkpointed() {
        // The atomic writes i, and the next loop iteration reads it.
        let c = checkpoints(
            "kernel k(a: array) { let i = 0; while i < 4 { atomic { i = i + a[i]; } } }",
        );
        assert_eq!(c, vec![0]);
    }

    #[test]
    fn liveness_fixpoint_on_while() {
        // y is only used by the loop condition via x's chain: liveness must
        // propagate through the loop back-edge.
        let mut p = parse(
            "kernel k(a: array) { let x = 0; let y = 1; while x < 4 { x = x + y; } a[0] = x; }",
        )
        .unwrap();
        check_program(&mut p).unwrap();
        let before = live_block(&p.kernels[0].body[2..], Slots::new());
        // Both x (slot 0) and y (slot 1) are live before the while.
        assert!(before.contains(&0) && before.contains(&1), "{before:?}");
    }

    #[test]
    fn may_must_def_distinguish_branches() {
        let mut p = parse(
            "kernel k(a: array) { let x = 0; let y = 0; if a[0] { x = 1; y = 1; } else { y = 2; } }",
        )
        .unwrap();
        check_program(&mut p).unwrap();
        let body = &p.kernels[0].body[2..];
        let may = may_def_block(body);
        let must = must_def_block(body);
        assert!(may.contains(&0) && may.contains(&1));
        assert!(!must.contains(&0), "x only on one branch");
        assert!(must.contains(&1), "y on both branches");
    }
}
