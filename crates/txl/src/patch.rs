//! Byte-exact source patches: span edits, overlap-checked edit sets, and
//! a unified-diff printer.
//!
//! The repair engine ([`crate::fix`]) expresses every rewrite as a set of
//! [`Edit`]s — replacements of half-open byte ranges of the *original*
//! source — so a patch can be applied, diffed, serialized, and compared
//! byte for byte against an expected post-fix twin. Edits never reference
//! patched text: an [`EditSet`] is built against one source revision and
//! applied in a single pass, and any two edits that overlap are rejected
//! up front (the fix-verify loop defers the loser to its next round
//! instead of guessing at a merge).

use crate::lint::Rule;
use crate::token::Span;
use std::fmt;

/// One replacement of the byte range `[start, end)` with `replacement`.
///
/// An insertion is an edit with `start == end`; a deletion has an empty
/// `replacement`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Edit {
    /// Byte offset of the first replaced byte.
    pub start: u32,
    /// Byte offset one past the last replaced byte.
    pub end: u32,
    /// Replacement text.
    pub replacement: String,
}

impl Edit {
    /// An edit replacing the bytes of `span`.
    pub fn replace(span: Span, replacement: impl Into<String>) -> Edit {
        Edit { start: span.start, end: span.end, replacement: replacement.into() }
    }

    /// Whether two edits touch overlapping byte ranges. Touching at a
    /// shared endpoint is *not* an overlap (adjacent edits compose), but
    /// two insertions at the same point are (their order is ambiguous).
    pub fn overlaps(&self, other: &Edit) -> bool {
        if self.start == self.end && other.start == other.end {
            return self.start == other.start;
        }
        self.start < other.end && other.start < self.end
    }
}

/// Why an edit could not join an [`EditSet`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatchError {
    /// The edit's byte range overlaps one already in the set.
    Overlap {
        /// The range of the incoming edit.
        incoming: (u32, u32),
        /// The range it collided with.
        existing: (u32, u32),
    },
    /// The edit's range does not lie inside the source it is applied to.
    OutOfBounds {
        /// The offending range.
        range: (u32, u32),
        /// Length of the source text.
        len: u32,
    },
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchError::Overlap { incoming, existing } => write!(
                f,
                "edit {}..{} overlaps edit {}..{}",
                incoming.0, incoming.1, existing.0, existing.1
            ),
            PatchError::OutOfBounds { range, len } => {
                write!(f, "edit {}..{} exceeds source length {len}", range.0, range.1)
            }
        }
    }
}

/// A set of non-overlapping edits against one source revision, kept
/// sorted by start offset.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EditSet {
    edits: Vec<Edit>,
}

impl EditSet {
    /// An empty edit set.
    pub fn new() -> EditSet {
        EditSet::default()
    }

    /// The edits, sorted by start offset.
    pub fn edits(&self) -> &[Edit] {
        &self.edits
    }

    /// Whether the set holds no edits.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Number of edits in the set.
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    /// Whether `edit` could be added without overlapping the set.
    pub fn accepts(&self, edit: &Edit) -> bool {
        self.edits.iter().all(|e| !e.overlaps(edit))
    }

    /// Adds an edit, keeping the set sorted.
    ///
    /// An edit byte-identical to one already present is absorbed silently
    /// (two diagnostics may propose the same repair of the same bytes).
    ///
    /// # Errors
    ///
    /// [`PatchError::Overlap`] when the range collides with an existing,
    /// non-identical edit.
    pub fn push(&mut self, edit: Edit) -> Result<(), PatchError> {
        if self.edits.contains(&edit) {
            return Ok(());
        }
        if let Some(hit) = self.edits.iter().find(|e| e.overlaps(&edit)) {
            return Err(PatchError::Overlap {
                incoming: (edit.start, edit.end),
                existing: (hit.start, hit.end),
            });
        }
        let at = self.edits.partition_point(|e| (e.start, e.end) <= (edit.start, edit.end));
        self.edits.insert(at, edit);
        Ok(())
    }

    /// Applies every edit to `src` in one left-to-right pass.
    ///
    /// # Errors
    ///
    /// [`PatchError::OutOfBounds`] when an edit exceeds the source (the
    /// set was built against a different revision).
    pub fn apply(&self, src: &str) -> Result<String, PatchError> {
        let len = src.len() as u32;
        let mut out = String::with_capacity(src.len());
        let mut cursor = 0u32;
        for e in &self.edits {
            if e.end > len || e.start > e.end {
                return Err(PatchError::OutOfBounds { range: (e.start, e.end), len });
            }
            out.push_str(&src[cursor as usize..e.start as usize]);
            out.push_str(&e.replacement);
            cursor = e.end;
        }
        out.push_str(&src[cursor as usize..]);
        Ok(out)
    }
}

/// One planned repair: the rule it discharges, where, and the edits that
/// do it. Produced by [`crate::fix::plan`] and carried on lint
/// diagnostics as `suggested_fix`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Patch {
    /// The rule this patch repairs.
    pub rule: Rule,
    /// Kernel the repair applies to.
    pub kernel: String,
    /// One-line description of the rewrite (stable, golden-file friendly).
    pub title: String,
    /// The byte edits, non-overlapping within this patch.
    pub edits: Vec<Edit>,
}

impl fmt::Display for Patch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} kernel {}: {}", self.rule.id(), self.kernel, self.title)
    }
}

/// Renders a unified diff (`---`/`+++`/`@@` hunks) between two texts,
/// labelled with `path`, with up to `context` lines of context per hunk.
///
/// Line-based with trailing-newline fidelity: a missing final newline is
/// marked with the conventional `\ No newline at end of file`.
pub fn unified_diff(old: &str, new: &str, path: &str, context: usize) -> String {
    if old == new {
        return String::new();
    }
    let a: Vec<&str> = old.lines().collect();
    let b: Vec<&str> = new.lines().collect();

    // LCS table over lines (fixture-scale inputs: O(n*m) is fine).
    let (n, m) = (a.len(), b.len());
    let mut lcs = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] =
                if a[i] == b[j] { lcs[i + 1][j + 1] + 1 } else { lcs[i + 1][j].max(lcs[i][j + 1]) };
        }
    }

    // Walk the table into an op list: ' ' keep, '-' delete, '+' insert.
    let mut ops: Vec<(char, usize, usize)> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            ops.push((' ', i, j));
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            ops.push(('-', i, j));
            i += 1;
        } else {
            ops.push(('+', i, j));
            j += 1;
        }
    }
    while i < n {
        ops.push(('-', i, j));
        i += 1;
    }
    while j < m {
        ops.push(('+', i, j));
        j += 1;
    }

    // Group changed ops into hunks with `context` lines around each.
    let changed: Vec<usize> =
        ops.iter().enumerate().filter(|(_, op)| op.0 != ' ').map(|(k, _)| k).collect();
    let mut out = String::new();
    out.push_str(&format!("--- a/{path}\n+++ b/{path}\n"));
    let mut k = 0usize;
    while k < changed.len() {
        let lo = changed[k].saturating_sub(context);
        let mut hi = changed[k] + context;
        let mut last = k;
        while last + 1 < changed.len() && changed[last + 1] <= hi + context + 1 {
            last += 1;
            hi = changed[last] + context;
        }
        hi = hi.min(ops.len().saturating_sub(1));
        // Hunk header positions are 1-based; empty sides use start 0.
        let first = &ops[lo];
        let a_start = first.1;
        let b_start = first.2;
        let a_count = ops[lo..=hi].iter().filter(|o| o.0 != '+').count();
        let b_count = ops[lo..=hi].iter().filter(|o| o.0 != '-').count();
        out.push_str(&format!(
            "@@ -{},{} +{},{} @@\n",
            if a_count == 0 { a_start } else { a_start + 1 },
            a_count,
            if b_count == 0 { b_start } else { b_start + 1 },
            b_count,
        ));
        for op in &ops[lo..=hi] {
            match op.0 {
                ' ' => out.push_str(&format!(" {}\n", a[op.1])),
                '-' => out.push_str(&format!("-{}\n", a[op.1])),
                '+' => out.push_str(&format!("+{}\n", b[op.2])),
                _ => unreachable!(),
            }
            if op.0 != '+' && op.1 + 1 == n && !old.ends_with('\n') {
                out.push_str("\\ No newline at end of file\n");
            }
            if op.0 != '-' && op.2 + 1 == m && !new.ends_with('\n') {
                out.push_str("\\ No newline at end of file\n");
            }
        }
        k = last + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edit(start: u32, end: u32, text: &str) -> Edit {
        Edit { start, end, replacement: text.to_string() }
    }

    #[test]
    fn apply_replaces_in_order() {
        let mut set = EditSet::new();
        set.push(edit(5, 10, "WORLD")).unwrap();
        set.push(edit(0, 3, "bye")).unwrap();
        assert_eq!(set.apply("hey, world!").unwrap(), "bye, WORLD!");
    }

    #[test]
    fn insertion_and_deletion() {
        let mut set = EditSet::new();
        set.push(edit(3, 3, "XY")).unwrap();
        set.push(edit(5, 6, "")).unwrap();
        assert_eq!(set.apply("abcdef").unwrap(), "abcXYde");
    }

    #[test]
    fn overlap_rejected_identical_absorbed() {
        let mut set = EditSet::new();
        set.push(edit(2, 6, "x")).unwrap();
        assert!(matches!(set.push(edit(5, 8, "y")), Err(PatchError::Overlap { .. })));
        set.push(edit(2, 6, "x")).unwrap(); // identical: absorbed
        assert_eq!(set.len(), 1);
        // Adjacent ranges compose.
        set.push(edit(6, 7, "z")).unwrap();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn same_point_insertions_conflict() {
        let mut set = EditSet::new();
        set.push(edit(3, 3, "a")).unwrap();
        assert!(!set.accepts(&edit(3, 3, "b")));
    }

    #[test]
    fn out_of_bounds_reported() {
        let mut set = EditSet::new();
        set.push(edit(0, 99, "")).unwrap();
        assert!(matches!(set.apply("short"), Err(PatchError::OutOfBounds { .. })));
    }

    #[test]
    fn diff_of_equal_texts_is_empty() {
        assert_eq!(unified_diff("same\n", "same\n", "f.txl", 3), "");
    }

    #[test]
    fn diff_marks_changed_lines() {
        let old = "a\nb\nc\n";
        let new = "a\nB\nc\n";
        let d = unified_diff(old, new, "k.txl", 1);
        assert!(d.starts_with("--- a/k.txl\n+++ b/k.txl\n"), "{d}");
        assert!(d.contains("-b\n"), "{d}");
        assert!(d.contains("+B\n"), "{d}");
        assert!(d.contains(" a\n") && d.contains(" c\n"), "context missing: {d}");
    }

    #[test]
    fn diff_handles_insertions_at_end() {
        let d = unified_diff("x\n", "x\ny\n", "f", 3);
        assert!(d.contains("+y\n"), "{d}");
        assert!(!d.contains("-x\n"), "{d}");
    }
}
