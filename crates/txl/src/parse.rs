//! Recursive-descent parser for TXL.
//!
//! Grammar (expression precedence climbs from `||` down to unary):
//!
//! ```text
//! program := kernel*
//! kernel  := 'kernel' IDENT '(' (param (',' param)*)? ')' block
//! param   := IDENT ':' 'array' ('[' INT ']')?
//! block   := '{' stmt* '}'
//! stmt    := 'let' IDENT '=' expr ';'
//!          | IDENT '=' expr ';'
//!          | IDENT '[' expr ']' '=' expr ';'
//!          | 'if' expr block ('else' block)?
//!          | 'while' expr block
//!          | 'atomic' block
//! expr    := or ; or := and ('||' and)* ; and := cmp ('&&' cmp)*
//! cmp     := bitor (('=='|'!='|'<'|'<='|'>'|'>=') bitor)?
//! bitor   := bitxor ('|' bitxor)* ; bitxor := bitand ('^' bitand)*
//! bitand  := shift ('&' shift)* ; shift := add (('<<'|'>>') add)*
//! add     := mul (('+'|'-') mul)* ; mul := unary (('*'|'/'|'%') unary)*
//! unary   := '!' unary | primary
//! primary := INT | IDENT | IDENT '[' expr ']' | IDENT '(' args ')' | '(' expr ')'
//! ```
//!
//! Built-in calls: `rand(n)`, `tid()`, `nthreads()`.

use crate::ast::{BinOp, Expr, Kernel, Param, Program, Stmt};
use crate::error::TxlError;
use crate::token::{lex, Span, Spanned, Tok};

/// Parses a TXL program (without semantic checking; see
/// [`crate::check::check_program`]).
///
/// # Errors
///
/// [`TxlError::Lex`] or [`TxlError::Parse`] with a 1-based line number.
pub fn parse(src: &str) -> Result<Program, TxlError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut kernels = Vec::new();
    while !p.at_end() {
        kernels.push(p.kernel()?);
    }
    Ok(Program { kernels })
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos)
            .map_or_else(|| self.toks.last().map_or(0, |t| t.span.line), |t| t.span.line)
    }

    /// Span of the token about to be consumed; empty at end of input
    /// (anchored just past the last token).
    fn cur_span(&self) -> Span {
        match self.toks.get(self.pos) {
            Some(t) => t.span,
            None => self.toks.last().map_or(Span::DUMMY, |t| Span {
                start: t.span.end,
                end: t.span.end,
                line: t.span.line,
            }),
        }
    }

    /// Span of the most recently consumed token.
    fn prev_span(&self) -> Span {
        self.pos.checked_sub(1).and_then(|p| self.toks.get(p)).map_or(Span::DUMMY, |t| t.span)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        self.pos += 1;
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, TxlError> {
        Err(TxlError::Parse { line: self.line(), span: self.cur_span(), message: message.into() })
    }

    fn expect(&mut self, want: &Tok) -> Result<(), TxlError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected `{want}`, found `{t}`"))
            }
            None => self.err(format!("expected `{want}`, found end of input")),
        }
    }

    fn ident(&mut self) -> Result<String, TxlError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => {
                self.pos -= 1;
                self.err(format!("expected identifier, found `{t}`"))
            }
            None => self.err("expected identifier, found end of input"),
        }
    }

    fn kernel(&mut self) -> Result<Kernel, TxlError> {
        self.expect(&Tok::Kernel)?;
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                let pname = self.ident()?;
                self.expect(&Tok::Colon)?;
                self.expect(&Tok::Array)?;
                let declared_len = if self.peek() == Some(&Tok::LBracket) {
                    self.pos += 1;
                    let n = match self.bump() {
                        Some(Tok::Int(v)) => v,
                        _ => return self.err("expected array length literal"),
                    };
                    self.expect(&Tok::RBracket)?;
                    Some(n)
                } else {
                    None
                };
                params.push(Param { name: pname, declared_len });
                if self.peek() == Some(&Tok::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        let body = self.block()?;
        Ok(Kernel { name, params, body, n_slots: 0 })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, TxlError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            if self.at_end() {
                return self.err("unterminated block (missing `}`)");
            }
            stmts.push(self.stmt()?);
        }
        self.pos += 1; // consume `}`
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, TxlError> {
        let start = self.cur_span();
        match self.peek() {
            Some(Tok::Let) => {
                self.pos += 1;
                let name = self.ident()?;
                self.expect(&Tok::Assign)?;
                let init = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Let { name, slot: usize::MAX, init, span: start.to(self.prev_span()) })
            }
            Some(Tok::If) => {
                self.pos += 1;
                let cond = self.expr()?;
                let then_blk = self.block()?;
                let else_blk = if self.peek() == Some(&Tok::Else) {
                    self.pos += 1;
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then_blk, else_blk, span: start.to(self.prev_span()) })
            }
            Some(Tok::While) => {
                self.pos += 1;
                let cond = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, span: start.to(self.prev_span()) })
            }
            Some(Tok::Atomic) => {
                self.pos += 1;
                let body = self.block()?;
                Ok(Stmt::Atomic { body, checkpoint: Vec::new(), span: start.to(self.prev_span()) })
            }
            Some(Tok::Retry) => {
                self.pos += 1;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Retry { span: start.to(self.prev_span()) })
            }
            Some(Tok::Ident(_)) => {
                let name = self.ident()?;
                match self.peek() {
                    Some(Tok::Assign) => {
                        self.pos += 1;
                        let value = self.expr()?;
                        self.expect(&Tok::Semi)?;
                        Ok(Stmt::Assign {
                            name,
                            slot: usize::MAX,
                            value,
                            span: start.to(self.prev_span()),
                        })
                    }
                    Some(Tok::LBracket) => {
                        self.pos += 1;
                        let index = self.expr()?;
                        self.expect(&Tok::RBracket)?;
                        self.expect(&Tok::Assign)?;
                        let value = self.expr()?;
                        self.expect(&Tok::Semi)?;
                        Ok(Stmt::Store {
                            array: name,
                            param: usize::MAX,
                            index,
                            value,
                            span: start.to(self.prev_span()),
                        })
                    }
                    _ => self.err("expected `=` or `[` after identifier"),
                }
            }
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected statement, found `{t}`"))
            }
            None => self.err("expected statement, found end of input"),
        }
    }

    fn expr(&mut self) -> Result<Expr, TxlError> {
        self.bin_level(0)
    }

    fn bin_level(&mut self, level: usize) -> Result<Expr, TxlError> {
        const LEVELS: &[&[(Tok, BinOp)]] = &[
            &[(Tok::OrOr, BinOp::OrOr)],
            &[(Tok::AndAnd, BinOp::AndAnd)],
            &[
                (Tok::Eq, BinOp::Eq),
                (Tok::Ne, BinOp::Ne),
                (Tok::Le, BinOp::Le),
                (Tok::Lt, BinOp::Lt),
                (Tok::Ge, BinOp::Ge),
                (Tok::Gt, BinOp::Gt),
            ],
            &[(Tok::Pipe, BinOp::Or)],
            &[(Tok::Caret, BinOp::Xor)],
            &[(Tok::Amp, BinOp::And)],
            &[(Tok::Shl, BinOp::Shl), (Tok::Shr, BinOp::Shr)],
            &[(Tok::Plus, BinOp::Add), (Tok::Minus, BinOp::Sub)],
            &[(Tok::Star, BinOp::Mul), (Tok::Slash, BinOp::Div), (Tok::Percent, BinOp::Rem)],
        ];
        if level == LEVELS.len() {
            return self.unary();
        }
        let mut lhs = self.bin_level(level + 1)?;
        'outer: loop {
            for (tok, op) in LEVELS[level] {
                if self.peek() == Some(tok) {
                    self.pos += 1;
                    let rhs = self.bin_level(level + 1)?;
                    lhs = Expr::Bin { op: *op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
                    continue 'outer;
                }
            }
            break;
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, TxlError> {
        if self.peek() == Some(&Tok::Bang) {
            self.pos += 1;
            Ok(Expr::Not(Box::new(self.unary()?)))
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr, TxlError> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Expr::Int(v)),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => match self.peek() {
                Some(Tok::LBracket) => {
                    let start = self.prev_span();
                    self.pos += 1;
                    let index = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    Ok(Expr::Index {
                        array: name,
                        param: usize::MAX,
                        index: Box::new(index),
                        span: start.to(self.prev_span()),
                    })
                }
                Some(Tok::LParen) => {
                    self.pos += 1;
                    match name.as_str() {
                        "rand" => {
                            let arg = self.expr()?;
                            self.expect(&Tok::RParen)?;
                            Ok(Expr::Rand(Box::new(arg)))
                        }
                        "tid" => {
                            self.expect(&Tok::RParen)?;
                            Ok(Expr::Tid)
                        }
                        "nthreads" => {
                            self.expect(&Tok::RParen)?;
                            Ok(Expr::NThreads)
                        }
                        other => self.err(format!(
                            "unknown builtin `{other}` (supported: rand, tid, nthreads)"
                        )),
                    }
                }
                _ => Ok(Expr::Var { name, slot: usize::MAX }),
            },
            Some(t) => {
                self.pos -= 1;
                self.err(format!("expected expression, found `{t}`"))
            }
            None => self.err("expected expression, found end of input"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_kernel() {
        let p = parse("kernel k(a: array) { let x = 1; a[x] = x + 2; }").unwrap();
        assert_eq!(p.kernels.len(), 1);
        let k = &p.kernels[0];
        assert_eq!(k.name, "k");
        assert_eq!(k.params.len(), 1);
        assert_eq!(k.body.len(), 2);
    }

    #[test]
    fn parses_atomic_if_while() {
        let src = r#"
            kernel k(a: array[64]) {
                let i = 0;
                while i < 4 {
                    atomic {
                        if a[i] == 0 { a[i] = tid(); } else { i = i + 1; }
                    }
                    i = i + 1;
                }
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.kernels[0].params[0].declared_len, Some(64));
        assert!(matches!(p.kernels[0].body[1], Stmt::While { .. }));
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("kernel k() { let x = 1 + 2 * 3; }").unwrap();
        let Stmt::Let { init, .. } = &p.kernels[0].body[0] else { panic!() };
        let Expr::Bin { op: BinOp::Add, rhs, .. } = init else { panic!("got {init:?}") };
        assert!(matches!(**rhs, Expr::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn precedence_cmp_over_logic() {
        let p = parse("kernel k() { let x = 1 < 2 && 3 == 3; }").unwrap();
        let Stmt::Let { init, .. } = &p.kernels[0].body[0] else { panic!() };
        assert!(matches!(init, Expr::Bin { op: BinOp::AndAnd, .. }));
    }

    #[test]
    fn error_reports_line() {
        let err = parse("kernel k() {\n let = 3;\n}").unwrap_err();
        match err {
            TxlError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn parse_error_span_points_at_offending_token() {
        let src = "kernel k() {\n let = 3;\n}";
        let err = parse(src).unwrap_err();
        let TxlError::Parse { span, .. } = err else { panic!("{err}") };
        // The error is "expected identifier, found `=`": span covers the `=`.
        assert_eq!(span.snippet(src), "=");
    }

    #[test]
    fn parse_error_at_eof_anchors_past_last_token() {
        let src = "kernel k() { let x = 1;";
        let err = parse(src).unwrap_err();
        let TxlError::Parse { span, .. } = err else { panic!("{err}") };
        assert_eq!(span.start, src.len() as u32);
        assert_eq!(span.start, span.end, "EOF span is empty");
    }

    #[test]
    fn stmt_spans_cover_source_text() {
        let src = "kernel k(a: array) { let x = 1; a[x] = x + 2; atomic { a[0] = 1; } }";
        let p = parse(src).unwrap();
        let body = &p.kernels[0].body;
        assert_eq!(body[0].span().snippet(src), "let x = 1;");
        assert_eq!(body[1].span().snippet(src), "a[x] = x + 2;");
        assert_eq!(body[2].span().snippet(src), "atomic { a[0] = 1; }");
    }

    #[test]
    fn index_expr_spans_cover_access() {
        let src = "kernel k(a: array) { let x = a[3 + 4]; }";
        let p = parse(src).unwrap();
        let Stmt::Let { init, .. } = &p.kernels[0].body[0] else { panic!() };
        let Expr::Index { span, .. } = init else { panic!("got {init:?}") };
        assert_eq!(span.snippet(src), "a[3 + 4]");
    }

    #[test]
    fn malformed_programs_reject_with_spans() {
        // Every span must land inside the source and carry the right line.
        for (src, line) in [
            ("kernel", 1),
            ("kernel k(", 1),
            ("kernel k(a: foo) { }", 1),
            ("kernel k() { x }", 1),
            ("kernel k() {\n a[1] 2; }", 2),
            ("kernel k() {\n\n let x = ; }", 3),
            ("kernel k() { let x = (1; }", 1),
        ] {
            let err = parse(src).unwrap_err();
            let TxlError::Parse { line: l, span, .. } = err else { panic!("{src}: {err}") };
            assert_eq!(l, line, "line for {src:?}");
            assert!(span.end as usize <= src.len(), "span {span} inside {src:?}");
            assert!(span.start <= span.end, "well-formed span for {src:?}");
        }
    }

    #[test]
    fn unknown_builtin_rejected() {
        let err = parse("kernel k() { let x = foo(1); }").unwrap_err();
        assert!(err.to_string().contains("unknown builtin"));
    }

    #[test]
    fn unterminated_block_rejected() {
        assert!(parse("kernel k() { let x = 1;").is_err());
    }

    #[test]
    fn multiple_kernels() {
        let p = parse("kernel a() { } kernel b() { }").unwrap();
        assert!(p.kernel("a").is_some());
        assert!(p.kernel("b").is_some());
        assert!(p.kernel("c").is_none());
    }
}
