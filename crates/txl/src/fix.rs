//! `txl::fix` — verified auto-repair of lint findings.
//!
//! GPURepair (Joshi et al.) frames kernel repair as a loop: an analyzer
//! produces findings, each finding maps to a candidate source rewrite,
//! and every candidate is re-verified by running the analyzer again.
//! This module is that loop for the TXL lint rules:
//!
//! | Rule  | Rewrite |
//! |-------|---------|
//! | TL001 | wrap the weak-isolation access in an `atomic` block |
//! | TL002 | replace the hand-rolled spin-lock protocol with `atomic` |
//! | TL003 | hoist the transaction into the loop / split the write set |
//! | TL004 | hoist the atomic above the divergent guard (guard inside) |
//! | TL005 | reorder the transaction body to the partner's order |
//!
//! Every rewrite is expressed as byte-exact [`crate::patch::Edit`]s over
//! the *current* source revision, planned from the span-carrying AST.
//! [`fix_source`] drives the fix-verify loop: compile → lint → plan →
//! apply non-overlapping patches → recompile → re-lint, until the
//! program is clean, no further patch is known, or the round budget is
//! exhausted. Patches that would overlap in one round are simply
//! deferred — the next round re-derives them against fresh spans.
//!
//! The static loop is complemented by [`dynamic_check`], which runs the
//! (repaired) program on the SIMT simulator with the happens-before race
//! detector attached and replays the commit history through `tm-check` —
//! the dynamic half of the fix-verify gate.
//!
//! Soundness caveats (also in DESIGN.md §14): rewrites preserve
//! single-thread semantics and only ever *strengthen* atomicity, but
//! TL004's guard-inside hoist re-evaluates the guard condition on every
//! transaction retry (visible only through `rand()`), and TL002's
//! lock-elision assumes the recognized acquire/release protocol was the
//! *only* cross-thread ordering the locks provided.

use crate::ast::{Expr, Kernel, Program, Stmt};
use crate::error::TxlError;
use crate::lint::{self, Diagnostic, LintConfig, Rule};
use crate::patch::{Edit, EditSet, Patch};
use crate::token::Span;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Configuration for the fix-verify loop.
#[derive(Clone, Debug)]
pub struct FixConfig {
    /// Lint configuration the loop repairs against (capacity etc.).
    pub lint: LintConfig,
    /// Maximum fix-verify rounds before giving up. Each round applies at
    /// least one patch, so this also bounds total rewrites.
    pub max_rounds: u32,
}

impl Default for FixConfig {
    fn default() -> Self {
        FixConfig { lint: LintConfig::default(), max_rounds: 8 }
    }
}

/// One patch the loop applied, with the diagnostic that motivated it.
#[derive(Clone, Debug)]
pub struct AppliedPatch {
    /// 1-based fix-verify round in which the patch was applied.
    pub round: u32,
    /// The finding being repaired (spans refer to that round's source).
    pub diagnostic: Diagnostic,
    /// The rewrite.
    pub patch: Patch,
}

/// Result of running [`fix_source`] to a fixpoint.
#[derive(Clone, Debug)]
pub struct FixReport {
    /// The source as given.
    pub original: String,
    /// The source after every applied round.
    pub fixed: String,
    /// Fix-verify rounds that applied at least one patch.
    pub rounds: u32,
    /// Patches applied, in application order.
    pub applied: Vec<AppliedPatch>,
    /// Findings remaining in `fixed` (empty = fully repaired).
    pub residual: Vec<Diagnostic>,
    /// `true` when the loop reached a fixpoint (clean, or no further
    /// patch known); `false` when it stopped at `max_rounds` with
    /// applicable patches still pending.
    pub converged: bool,
}

impl FixReport {
    /// Whether any patch was applied.
    pub fn changed(&self) -> bool {
        self.original != self.fixed
    }

    /// Whether the fixed program lints clean.
    pub fn is_clean(&self) -> bool {
        self.residual.is_empty()
    }

    /// Unified diff from the original to the fixed source.
    pub fn diff(&self, path: &str) -> String {
        crate::patch::unified_diff(&self.original, &self.fixed, path, 3)
    }
}

/// Runs the fix-verify loop over `src` until the program lints clean, no
/// further patch is known, or `cfg.max_rounds` is exhausted.
///
/// # Errors
///
/// Any [`TxlError`] from compiling the original — or a patched — source.
/// A compile error on a patched revision means a planner produced an
/// invalid rewrite, which the loop treats as fatal rather than papering
/// over.
pub fn fix_source(src: &str, cfg: &FixConfig) -> Result<FixReport, TxlError> {
    let mut current = src.to_string();
    let mut applied: Vec<AppliedPatch> = Vec::new();
    let mut rounds = 0u32;
    loop {
        let program = crate::compile(&current)?;
        let diags = lint::lint_program(&program, &cfg.lint);
        if diags.is_empty() {
            return Ok(FixReport {
                original: src.to_string(),
                fixed: current,
                rounds,
                applied,
                residual: Vec::new(),
                converged: true,
            });
        }

        // Plan one patch per finding; collect the non-overlapping subset.
        let mut set = EditSet::new();
        let mut planned: Vec<AppliedPatch> = Vec::new();
        for d in &diags {
            let Some(patch) = plan(&current, &program, d, &cfg.lint) else { continue };
            let mut trial = set.clone();
            if patch.edits.iter().try_for_each(|e| trial.push(e.clone())).is_ok() {
                set = trial;
                planned.push(AppliedPatch { round: rounds + 1, diagnostic: d.clone(), patch });
            }
            // Overlapping patches are deferred: the next round re-lints
            // and re-plans them against the rewritten source.
        }

        if set.is_empty() {
            // Fixpoint: findings remain but no rewrite is known for them.
            return Ok(FixReport {
                original: src.to_string(),
                fixed: current,
                rounds,
                applied,
                residual: diags,
                converged: true,
            });
        }
        if rounds >= cfg.max_rounds {
            return Ok(FixReport {
                original: src.to_string(),
                fixed: current,
                rounds,
                applied,
                residual: diags,
                converged: false,
            });
        }

        rounds += 1;
        current = set
            .apply(&current)
            .map_err(|e| TxlError::Runtime { message: format!("internal patch error: {e}") })?;
        applied.extend(planned);
    }
}

// ------------------------------------------------------------- planning

/// Plans the repair for one diagnostic, or `None` when no sound rewrite
/// is known (the finding is then reported as residual).
///
/// The returned patch's edits are byte offsets into `src`, which must be
/// the same revision `diag` was produced from.
pub fn plan(src: &str, program: &Program, diag: &Diagnostic, cfg: &LintConfig) -> Option<Patch> {
    let kernel = program.kernel(&diag.kernel)?;
    match diag.rule {
        Rule::NonAtomicSharedAccess => plan_tl001(src, kernel, diag),
        Rule::UnsortedLockAcquisition => plan_tl002(src, kernel, diag),
        Rule::UnboundedWriteSet => plan_tl003(src, kernel, diag, cfg),
        Rule::DivergentAtomic => plan_tl004(src, kernel, diag),
        Rule::ConflictingFootprintOrder => plan_tl005(src, kernel, diag),
        // Contention findings are configuration advice (variant / stripe
        // choice), not source defects — there is no sound source rewrite.
        Rule::StaticallyHotStripe | Rule::ReadOnlyWriteCost => None,
        // An unwakeable `retry` is a logic error: the intended wake
        // condition exists only in the author's head, so no mechanical
        // rewrite can supply the missing read. Reported as residual.
        Rule::UnwakeableRetry => None,
    }
}

fn mk_patch(diag: &Diagnostic, kernel: &Kernel, title: &str, edits: Vec<Edit>) -> Option<Patch> {
    Some(Patch { rule: diag.rule, kernel: kernel.name.clone(), title: title.to_string(), edits })
}

fn contains(outer: Span, inner: Span) -> bool {
    outer.start <= inner.start && inner.end <= outer.end
}

/// The innermost statement whose span equals `target`.
fn find_stmt(stmts: &[Stmt], target: Span) -> Option<&Stmt> {
    for s in stmts {
        if s.span() == target {
            return Some(s);
        }
        if !contains(s.span(), target) {
            continue;
        }
        return match s {
            Stmt::If { then_blk, else_blk, .. } => {
                find_stmt(then_blk, target).or_else(|| find_stmt(else_blk, target))
            }
            Stmt::While { body, .. } | Stmt::Atomic { body, .. } => find_stmt(body, target),
            _ => None,
        };
    }
    None
}

/// The statement list that directly holds a statement spanning `target`.
fn find_block(stmts: &[Stmt], target: Span) -> Option<&[Stmt]> {
    for s in stmts {
        if s.span() == target {
            return Some(stmts);
        }
        if !contains(s.span(), target) {
            continue;
        }
        return match s {
            Stmt::If { then_blk, else_blk, .. } => {
                find_block(then_blk, target).or_else(|| find_block(else_blk, target))
            }
            Stmt::While { body, .. } | Stmt::Atomic { body, .. } => find_block(body, target),
            _ => None,
        };
    }
    None
}

/// Whether the statement spanning `target` sits inside an `atomic` block
/// (wrapping it in another would be rejected by the checker).
fn in_atomic(stmts: &[Stmt], target: Span) -> bool {
    for s in stmts {
        if s.span() == target {
            return false;
        }
        if !contains(s.span(), target) {
            continue;
        }
        return match s {
            Stmt::Atomic { .. } => true,
            Stmt::If { then_blk, else_blk, .. } => {
                in_atomic(then_blk, target) || in_atomic(else_blk, target)
            }
            Stmt::While { body, .. } => in_atomic(body, target),
            _ => false,
        };
    }
    false
}

/// Whether any statement (transitively) is an `atomic` block.
fn contains_atomic(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Atomic { .. } => true,
        Stmt::If { then_blk, else_blk, .. } => {
            contains_atomic(then_blk) || contains_atomic(else_blk)
        }
        Stmt::While { body, .. } => contains_atomic(body),
        _ => false,
    })
}

/// The condition text of an `if`/`while`: the bytes between the keyword
/// and the first `{`. Well-defined because TXL expressions cannot
/// contain `{`.
fn guard_text<'a>(src: &'a str, span: Span, keyword: &str) -> Option<&'a str> {
    let rest = span.snippet(src).strip_prefix(keyword)?;
    let cond = rest[..rest.find('{')?].trim();
    (!cond.is_empty()).then_some(cond)
}

/// Source snippets of the given spans joined with single spaces.
fn join_spans(src: &str, spans: impl Iterator<Item = Span>) -> String {
    spans.map(|s| s.snippet(src)).collect::<Vec<_>>().join(" ")
}

/// The whitespace indenting the line `start` sits on, when `start` is
/// the first non-blank byte of that line.
fn line_indent(src: &str, start: u32) -> Option<&str> {
    let head = &src[..start as usize];
    let line_start = head.rfind('\n').map_or(0, |i| i + 1);
    let prefix = &head[line_start..];
    prefix.chars().all(|c| c == ' ' || c == '\t').then_some(prefix)
}

// ----------------------------------------------------------------- TL001

fn plan_tl001(src: &str, kernel: &Kernel, diag: &Diagnostic) -> Option<Patch> {
    // The non-atomic statement owning the flagged access. `Some(None)`
    // means the access sits in a guard condition — no statement-level
    // wrap exists for it.
    fn host(stmts: &[Stmt], target: Span) -> Option<Option<&Stmt>> {
        for s in stmts {
            if !contains(s.span(), target) {
                continue;
            }
            return match s {
                Stmt::Let { .. } | Stmt::Assign { .. } | Stmt::Store { .. } => Some(Some(s)),
                Stmt::If { then_blk, else_blk, .. } => {
                    host(then_blk, target).or_else(|| host(else_blk, target)).or(Some(None))
                }
                Stmt::While { body, .. } => host(body, target).or(Some(None)),
                Stmt::Retry { .. } | Stmt::Atomic { .. } => Some(None),
            };
        }
        None
    }
    let s = host(&kernel.body, diag.span)??;
    let span = s.span();
    let snip = span.snippet(src);
    let (title, replacement) = match s {
        Stmt::Let { name, .. } => {
            // Wrapping the whole `let` would hide the binding inside the
            // atomic's lexical scope; split the declaration from the
            // transactional initialiser instead.
            let eq = snip.find('=')?;
            let semi = snip.rfind(';')?;
            let rhs = snip.get(eq + 1..semi)?.trim();
            (
                "split the declaration and wrap its initialiser in atomic",
                format!("let {name} = 0; atomic {{ {name} = {rhs}; }}"),
            )
        }
        _ => {
            ("wrap the non-transactional access in an atomic block", format!("atomic {{ {snip} }}"))
        }
    };
    mk_patch(diag, kernel, title, vec![Edit::replace(span, replacement)])
}

// ----------------------------------------------------------------- TL002

fn plan_tl002(src: &str, kernel: &Kernel, diag: &Diagnostic) -> Option<Patch> {
    if in_atomic(&kernel.body, diag.span) {
        return None;
    }
    let block = find_block(&kernel.body, diag.span)?;
    let flagged = block.iter().position(|s| s.span() == diag.span)?;

    // An acquisition pair at `i`: a pure spin `while L[e] { }` followed
    // by the matching set `L[e] = 1;`.
    let acq_at = |i: usize| -> Option<(usize, &Expr)> {
        let spin = lint::as_spin(block.get(i)?)?;
        match block.get(i + 1)? {
            Stmt::Store { param, index, value, .. }
                if *param == spin.param
                    && lint::expr_eq(index, spin.index)
                    && matches!(value, Expr::Int(1)) =>
            {
                Some((spin.param, spin.index))
            }
            _ => None,
        }
    };

    // The flagged spin must start an acquisition pair; grow the maximal
    // run of same-array pairs around it.
    let (lock_param, _) = acq_at(flagged)?;
    let mut start = flagged;
    while start >= 2 && matches!(acq_at(start - 2), Some((p, _)) if p == lock_param) {
        start -= 2;
    }
    let mut last = flagged;
    while matches!(acq_at(last + 2), Some((p, _)) if p == lock_param) {
        last += 2;
    }
    let acquired: Vec<&Expr> =
        (start..=last).step_by(2).map(|i| acq_at(i).expect("pair verified").1).collect();
    if acquired.len() < 2 {
        return None;
    }

    // Critical section: everything up to the releases of exactly the
    // acquired set. `L[e] = 0;` for an outstanding `e` is a release;
    // anything else is body and must neither touch the lock array nor
    // contain an atomic (the rewrite nests it inside one).
    let release_of = |s: &Stmt, outstanding: &[&Expr]| -> Option<usize> {
        let Stmt::Store { param, index, value, .. } = s else { return None };
        if *param != lock_param || !matches!(value, Expr::Int(0)) {
            return None;
        }
        outstanding.iter().position(|e| lint::expr_eq(e, index))
    };
    let mut i = last + 2;
    let mut body: Vec<Span> = Vec::new();
    let mut outstanding: Vec<&Expr> = acquired.clone();
    while i < block.len() && !outstanding.is_empty() {
        let s = &block[i];
        if let Some(at) = release_of(s, &outstanding) {
            outstanding.remove(at);
        } else {
            let mut acc = Vec::new();
            lint::block_accesses(std::slice::from_ref(s), &mut acc);
            if acc.iter().any(|(p, _)| *p == lock_param) {
                return None;
            }
            if contains_atomic(std::slice::from_ref(s)) {
                return None;
            }
            body.push(s.span());
        }
        i += 1;
    }
    if !outstanding.is_empty() || body.is_empty() {
        return None;
    }

    let region = block[start].span().to(block[i - 1].span());
    let text = format!("atomic {{ {} }}", join_spans(src, body.into_iter()));
    mk_patch(
        diag,
        kernel,
        "replace the hand-rolled lock protocol with an atomic block",
        vec![Edit::replace(region, text)],
    )
}

// ----------------------------------------------------------------- TL003

fn plan_tl003(src: &str, kernel: &Kernel, diag: &Diagnostic, cfg: &LintConfig) -> Option<Patch> {
    let stmt = find_stmt(&kernel.body, diag.span)?;
    let Stmt::Atomic { body, span, .. } = stmt else { return None };
    match lint::store_bound(body) {
        None => {
            // Unbounded: the body must be a single store-bearing loop —
            // hoist the transaction inside it, one iteration per
            // transaction (vincent_stm's recompute-instead-of-retry
            // shape: smaller transactions, re-derived state per commit).
            let [lone] = &body[..] else { return None };
            let Stmt::While { body: wbody, span: wspan, .. } = lone else { return None };
            if wbody.is_empty() || contains_atomic(wbody) {
                return None;
            }
            let per_iter = lint::store_bound(wbody)?;
            if cfg.write_set_capacity.is_some_and(|cap| per_iter > cap) {
                return None;
            }
            let cond = guard_text(src, *wspan, "while")?;
            let inner = join_spans(src, wbody.iter().map(Stmt::span));
            mk_patch(
                diag,
                kernel,
                "hoist the transaction inside the loop (one iteration per transaction)",
                vec![Edit::replace(*span, format!("while {cond} {{ atomic {{ {inner} }} }}"))],
            )
        }
        Some(bound) => {
            let cap = cfg.write_set_capacity?;
            if bound <= cap {
                return None; // stale finding relative to this config
            }
            // Finite but oversized: split into consecutive bounded
            // sub-transactions. `let` bindings would not survive the
            // scope split, and any single statement over capacity cannot
            // be split at statement granularity.
            if body.iter().any(|s| matches!(s, Stmt::Let { .. })) {
                return None;
            }
            let mut groups: Vec<Vec<Span>> = Vec::new();
            let mut cur: Vec<Span> = Vec::new();
            let mut cur_bound = 0u32;
            for s in body {
                let b = lint::store_bound(std::slice::from_ref(s))?;
                if b > cap {
                    return None;
                }
                if cur_bound + b > cap && !cur.is_empty() {
                    groups.push(std::mem::take(&mut cur));
                    cur_bound = 0;
                }
                cur.push(s.span());
                cur_bound += b;
            }
            if !cur.is_empty() {
                groups.push(cur);
            }
            if groups.len() < 2 {
                return None;
            }
            let text = groups
                .iter()
                .map(|g| format!("atomic {{ {} }}", join_spans(src, g.iter().copied())))
                .collect::<Vec<_>>()
                .join(" ");
            mk_patch(
                diag,
                kernel,
                "split the oversized write set into bounded sub-transactions",
                vec![Edit::replace(*span, text)],
            )
        }
    }
}

// ----------------------------------------------------------------- TL004

fn plan_tl004(src: &str, kernel: &Kernel, diag: &Diagnostic) -> Option<Patch> {
    // The innermost guard: an `if` (no `else`) whose then-branch is
    // exactly the flagged atomic. Other shapes (siblings in the branch,
    // divergent loops) have no local hoist and stay residual.
    fn find_guard(stmts: &[Stmt], atomic: Span) -> Option<&Stmt> {
        for s in stmts {
            if s.span() == atomic || !contains(s.span(), atomic) {
                continue;
            }
            return match s {
                Stmt::If { then_blk, else_blk, .. } => {
                    if else_blk.is_empty() && then_blk.len() == 1 && then_blk[0].span() == atomic {
                        Some(s)
                    } else {
                        find_guard(then_blk, atomic).or_else(|| find_guard(else_blk, atomic))
                    }
                }
                Stmt::While { body, .. } => find_guard(body, atomic),
                _ => None,
            };
        }
        None
    }
    let guard = find_guard(&kernel.body, diag.span)?;
    let Stmt::If { then_blk, span: gspan, .. } = guard else { return None };
    let Stmt::Atomic { body: abody, .. } = &then_blk[0] else { return None };
    if abody.is_empty() {
        return None;
    }
    let cond = guard_text(src, *gspan, "if")?;
    let inner = join_spans(src, abody.iter().map(Stmt::span));
    mk_patch(
        diag,
        kernel,
        "hoist the atomic above the divergent guard (guard moves inside)",
        vec![Edit::replace(*gspan, format!("atomic {{ if {cond} {{ {inner} }} }}"))],
    )
}

// ----------------------------------------------------------------- TL005

fn plan_tl005(src: &str, kernel: &Kernel, diag: &Diagnostic) -> Option<Patch> {
    let fps = crate::footprint::kernel_footprint(kernel, crate::footprint::Interval::TOP, u32::MAX);
    let bi = fps.atomics.iter().position(|f| f.span == diag.span)?;
    let b = &fps.atomics[bi];
    // The earlier block this one inverts against (lint anchors the
    // finding on the later of the pair).
    let a = fps.atomics[..bi]
        .iter()
        .find(|a| lint::inverted_shared(a, b, kernel.params.len()).is_some())?;

    let stmt = find_stmt(&kernel.body, diag.span)?;
    let Stmt::Atomic { body, .. } = stmt else { return None };
    if body.len() < 2 {
        return None;
    }

    // Key each statement by where its first-touched array appears in the
    // partner's acquisition order; statements touching none sort last.
    let key_of = |s: &Stmt| -> usize {
        let mut ps = Vec::new();
        stmt_first_params(s, &mut ps);
        ps.first()
            .copied()
            .and_then(|p| a.first_order.iter().position(|&x| x == p))
            .unwrap_or(usize::MAX)
    };
    let keys: Vec<usize> = body.iter().map(key_of).collect();
    let mut order: Vec<usize> = (0..body.len()).collect();
    order.sort_by_key(|&i| (keys[i], i));
    if order.iter().enumerate().all(|(new, &old)| new == old) {
        return None;
    }

    // Only flip pairs that provably commute.
    for x in 0..order.len() {
        for y in x + 1..order.len() {
            if order[x] > order[y] && !independent(&body[order[x]], &body[order[y]]) {
                return None;
            }
        }
    }

    // The reordered block must actually agree with the partner's order
    // on the shared arrays — otherwise the rewrite would churn without
    // discharging the finding.
    let mut new_first: Vec<usize> = Vec::new();
    for &i in &order {
        let mut ps = Vec::new();
        stmt_first_params(&body[i], &mut ps);
        for p in ps {
            if !new_first.contains(&p) {
                new_first.push(p);
            }
        }
    }
    let trial = crate::footprint::AtomicFootprint {
        span: b.span,
        params: b.params.clone(),
        first_order: new_first,
    };
    if lint::inverted_shared(a, &trial, kernel.params.len()).is_some() {
        return None;
    }

    let first = body.first()?.span();
    let region = first.to(body.last()?.span());
    let sep = match line_indent(src, first.start) {
        Some(ind) => format!("\n{ind}"),
        None => " ".to_string(),
    };
    let text = order.iter().map(|&i| body[i].span().snippet(src)).collect::<Vec<_>>().join(&sep);
    mk_patch(
        diag,
        kernel,
        "reorder the transaction body to match the partner block's acquisition order",
        vec![Edit::replace(region, text)],
    )
}

/// Array parameters in the order a statement first touches them,
/// mirroring the footprint analyzer's evaluation order (a store
/// evaluates its index, then its value, then records the write).
fn stmt_first_params(s: &Stmt, out: &mut Vec<usize>) {
    fn expr(e: &Expr, out: &mut Vec<usize>) {
        match e {
            Expr::Int(_) | Expr::Tid | Expr::NThreads | Expr::Var { .. } => {}
            Expr::Index { param, index, .. } => {
                expr(index, out);
                out.push(*param);
            }
            Expr::Bin { lhs, rhs, .. } => {
                expr(lhs, out);
                expr(rhs, out);
            }
            Expr::Not(e) | Expr::Rand(e) => expr(e, out),
        }
    }
    match s {
        Stmt::Let { init, .. } | Stmt::Assign { value: init, .. } => expr(init, out),
        Stmt::Store { param, index, value, .. } => {
            expr(index, out);
            expr(value, out);
            out.push(*param);
        }
        Stmt::If { cond, then_blk, else_blk, .. } => {
            expr(cond, out);
            for s in then_blk.iter().chain(else_blk) {
                stmt_first_params(s, out);
            }
        }
        Stmt::While { cond, body, .. } => {
            expr(cond, out);
            for s in body {
                stmt_first_params(s, out);
            }
        }
        Stmt::Atomic { body, .. } => {
            for s in body {
                stmt_first_params(s, out);
            }
        }
        Stmt::Retry { .. } => {}
    }
}

/// Whether two statements commute: no array conflict (shared param with
/// a write on either side), no local data dependency, and at most one
/// side draws from the `rand()` stream (reordering two draws would swap
/// their values).
fn independent(s: &Stmt, t: &Stmt) -> bool {
    #[derive(Default)]
    struct Effects {
        arr_read: BTreeSet<usize>,
        arr_write: BTreeSet<usize>,
        loc_read: BTreeSet<usize>,
        loc_write: BTreeSet<usize>,
        rand: bool,
        /// `retry` ends the attempt: it never commutes with anything.
        retry: bool,
    }
    fn expr(e: &Expr, fx: &mut Effects) {
        match e {
            Expr::Int(_) | Expr::Tid | Expr::NThreads => {}
            Expr::Var { slot, .. } => {
                fx.loc_read.insert(*slot);
            }
            Expr::Index { param, index, .. } => {
                fx.arr_read.insert(*param);
                expr(index, fx);
            }
            Expr::Bin { lhs, rhs, .. } => {
                expr(lhs, fx);
                expr(rhs, fx);
            }
            Expr::Not(e) => expr(e, fx),
            Expr::Rand(e) => {
                fx.rand = true;
                expr(e, fx);
            }
        }
    }
    fn stmt(s: &Stmt, fx: &mut Effects) {
        match s {
            Stmt::Let { slot, init, .. } => {
                expr(init, fx);
                fx.loc_write.insert(*slot);
            }
            Stmt::Assign { slot, value, .. } => {
                expr(value, fx);
                fx.loc_write.insert(*slot);
            }
            Stmt::Store { param, index, value, .. } => {
                expr(index, fx);
                expr(value, fx);
                fx.arr_write.insert(*param);
            }
            Stmt::If { cond, then_blk, else_blk, .. } => {
                expr(cond, fx);
                for s in then_blk.iter().chain(else_blk) {
                    stmt(s, fx);
                }
            }
            Stmt::While { cond, body, .. } => {
                expr(cond, fx);
                for s in body {
                    stmt(s, fx);
                }
            }
            Stmt::Atomic { body, .. } => {
                for s in body {
                    stmt(s, fx);
                }
            }
            Stmt::Retry { .. } => fx.retry = true,
        }
    }
    let (mut a, mut b) = (Effects::default(), Effects::default());
    stmt(s, &mut a);
    stmt(t, &mut b);
    if (a.rand && b.rand) || a.retry || b.retry {
        return false;
    }
    let arr_conflict =
        a.arr_write.iter().any(|p| b.arr_read.contains(p) || b.arr_write.contains(p))
            || b.arr_write.iter().any(|p| a.arr_read.contains(p));
    let loc_conflict =
        a.loc_write.iter().any(|x| b.loc_read.contains(x) || b.loc_write.contains(x))
            || b.loc_write.iter().any(|x| a.loc_read.contains(x));
    !arr_conflict && !loc_conflict
}

// --------------------------------------------------------- dynamic gate

/// Grid used by [`dynamic_check`]: 2 blocks × 32 threads.
const GATE_BLOCKS: u32 = 2;
/// Threads per block in the gate grid.
const GATE_THREADS_PER_BLOCK: u32 = 32;

/// Outcome of the dynamic fix-verify gate.
#[derive(Clone, Debug, Default)]
pub struct DynamicReport {
    /// Kernels that ran to completion.
    pub kernels: usize,
    /// Violations observed, rendered as strings (simulator deadlock or
    /// livelock, happens-before races, opacity violations).
    pub violations: Vec<String>,
}

impl DynamicReport {
    /// Whether every kernel ran clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs every kernel of `src` on the SIMT simulator — lock-sorting STM,
/// happens-before race detector attached, commit history recorded — and
/// replays the history through `tm-check`: the dynamic half of the
/// fix-verify gate.
///
/// Array lengths come from the declared length when present, otherwise
/// from the footprint hull (falling back to 64 words when the hull is
/// unbounded). Runtime failures (deadlock, livelock, out-of-bounds) are
/// reported as violations rather than errors, so a gate run always
/// produces a report for a compilable program.
///
/// # Errors
///
/// Any [`TxlError`] from compiling `src`, or a simulator setup failure
/// (out of device memory).
pub fn dynamic_check(src: &str, seed: u64) -> Result<DynamicReport, TxlError> {
    let program = crate::compile(src)?;
    let nthreads = GATE_BLOCKS * GATE_THREADS_PER_BLOCK;
    let mut report = DynamicReport::default();
    for kernel in &program.kernels {
        let mut sim_cfg = gpu_sim::SimConfig::with_memory(1 << 16);
        sim_cfg.watchdog_cycles = 100_000_000;
        sim_cfg.stall_cycles = 200_000;
        let sink = gpu_sim::race_sink();
        sim_cfg.race = Some(sink.clone());
        let mut sim = gpu_sim::Sim::new(sim_cfg);

        let stm_cfg = gpu_stm::StmConfig::new(64);
        let shared = gpu_stm::StmShared::init(&mut sim, &stm_cfg)?;
        let rec = gpu_stm::recorder();
        let stm = Rc::new(gpu_stm::LockStm::hv_sorting(shared, stm_cfg).with_recorder(rec.clone()));

        let fp = crate::footprint::kernel_footprint(
            kernel,
            crate::footprint::Interval::new(0, nthreads - 1),
            nthreads,
        );
        let mut bindings = Vec::new();
        for (pi, p) in kernel.params.iter().enumerate() {
            let len = p
                .declared_len
                .or_else(|| match fp.params[pi].touched() {
                    Some(hull) if !hull.is_top() && hull.hi < 4096 => Some(hull.hi + 1),
                    _ => None,
                })
                .unwrap_or(64)
                .max(1);
            let addr = sim.alloc(len)?;
            bindings.push(crate::interp::ArrayBinding::new(p.name.clone(), addr, len));
        }

        let grid = gpu_sim::LaunchConfig::new(GATE_BLOCKS, GATE_THREADS_PER_BLOCK);
        match crate::interp::launch(&mut sim, &stm, kernel, grid, seed, &bindings) {
            Ok(_) => report.kernels += 1,
            Err(e) => report.violations.push(format!("kernel `{}`: {e}", kernel.name)),
        }
        for v in tm_check::gate_violations(&rec.borrow(), &sink.borrow().races) {
            report.violations.push(format!("kernel `{}`: {v}", kernel.name));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fix(src: &str) -> FixReport {
        fix_source(src, &FixConfig::default()).expect("fixture compiles")
    }

    fn fix_cap(src: &str, cap: u32) -> FixReport {
        let cfg = FixConfig {
            lint: LintConfig { write_set_capacity: Some(cap), ..LintConfig::default() },
            ..FixConfig::default()
        };
        fix_source(src, &cfg).expect("fixture compiles")
    }

    #[test]
    fn tl001_store_is_wrapped() {
        let r = fix("kernel k(a: array) { atomic { a[0] = a[0] + 1; } a[7] = 0; }");
        assert!(r.is_clean(), "{:?}", r.residual);
        assert!(r.fixed.contains("atomic { a[7] = 0; }"), "{}", r.fixed);
        assert_eq!(r.rounds, 1);
    }

    #[test]
    fn tl001_let_is_split_not_wrapped() {
        let r = fix("kernel k(a: array) { let x = a[0]; atomic { a[1] = x; } a[2] = x; }");
        assert!(r.is_clean(), "{:?}", r.residual);
        assert!(
            r.fixed.contains("let x = 0; atomic { x = a[0]; }"),
            "declaration stays in scope: {}",
            r.fixed
        );
    }

    #[test]
    fn tl001_guard_read_is_residual() {
        let r = fix("kernel k(a: array) { atomic { a[0] = 1; } if a[1] { a[0] = 0; } }");
        // The store inside the branch is wrapped, but the guard read has
        // no statement-level fix and stays residual.
        assert!(!r.is_clean());
        assert!(r.converged, "loop reaches a fixpoint");
        assert!(r.residual.iter().all(|d| d.rule == Rule::NonAtomicSharedAccess));
    }

    #[test]
    fn tl002_lock_protocol_becomes_atomic() {
        let r = fix("kernel locks(lock: array, data: array) {
            let a = tid() % 4;
            let b = 3 - a;
            while lock[a] { }
            lock[a] = 1;
            while lock[b] { }
            lock[b] = 1;
            data[a] = data[a] + 1;
            lock[b] = 0;
            lock[a] = 0;
        }");
        assert!(r.is_clean(), "{:?}", r.residual);
        assert!(r.fixed.contains("atomic { data[a] = data[a] + 1; }"), "{}", r.fixed);
        assert!(!r.fixed.contains("while lock"), "spins gone: {}", r.fixed);
    }

    #[test]
    fn tl003_unbounded_loop_is_hoisted() {
        let r = fix("kernel scatter(out: array) {
            let i = 0;
            atomic { while i < 64 { out[i] = out[i] + 1; i = i + 1; } }
        }");
        assert!(r.is_clean(), "{:?}", r.residual);
        assert!(
            r.fixed.contains("while i < 64 { atomic { out[i] = out[i] + 1; i = i + 1; } }"),
            "{}",
            r.fixed
        );
    }

    #[test]
    fn tl003_oversized_body_is_split() {
        let r =
            fix_cap("kernel k(a: array) { atomic { a[0] = 1; a[1] = 1; a[2] = 1; a[3] = 1; } }", 2);
        assert!(r.is_clean(), "{:?}", r.residual);
        assert_eq!(r.fixed.matches("atomic {").count(), 2, "{}", r.fixed);
    }

    #[test]
    fn tl004_guard_moves_inside() {
        let r = fix("kernel vote(tally: array) {
            if tid() % 2 { atomic { tally[0] = tally[0] + 1; } }
        }");
        assert!(r.is_clean(), "{:?}", r.residual);
        assert!(
            r.fixed.contains("atomic { if tid() % 2 { tally[0] = tally[0] + 1; } }"),
            "{}",
            r.fixed
        );
    }

    #[test]
    fn tl004_nested_guards_converge() {
        let r = fix("kernel k(a: array) {
            let t = tid();
            if t < 8 { if t % 2 { atomic { a[0] = a[0] + 1; } } }
        }");
        assert!(r.is_clean(), "{:?}", r.residual);
        assert!(r.rounds >= 2, "one hoist per round: {}", r.rounds);
        assert!(r.fixed.contains("atomic { if t < 8 { if t % 2 {"), "{}", r.fixed);
    }

    #[test]
    fn tl005_body_is_reordered() {
        let r = fix("kernel transfer(from: array, into: array) {
            let i = tid() % 8;
            atomic {
                from[i] = from[i] - 1;
                into[i] = into[i] + 1;
            }
            atomic {
                into[i] = into[i] - 1;
                from[i] = from[i] + 1;
            }
        }");
        assert!(r.is_clean(), "{:?}", r.residual);
        let second = r.fixed.rfind("atomic").unwrap();
        let tail = &r.fixed[second..];
        assert!(
            tail.find("from[i]").unwrap() < tail.find("into[i]").unwrap(),
            "second block now touches `from` first: {tail}"
        );
    }

    #[test]
    fn tl005_dependent_statements_stay_residual() {
        // The two stores read each other's array: flipping them is not
        // provably sound, so the finding must survive, not be mangled.
        let r = fix("kernel k(a: array, b: array) {
            let i = tid() % 4;
            atomic { a[i] = b[i]; b[i] = a[i] + 1; }
            atomic { b[i] = a[i]; a[i] = b[i] + 1; }
        }");
        assert!(!r.is_clean());
        assert!(r.converged);
        assert!(!r.changed(), "no unsound rewrite applied: {}", r.fixed);
    }

    #[test]
    fn clean_program_is_untouched() {
        let src = "kernel k(a: array) { atomic { a[0] = a[0] + 1; } }";
        let r = fix(src);
        assert!(!r.changed());
        assert_eq!(r.rounds, 0);
        assert!(r.is_clean() && r.converged);
        assert_eq!(r.diff("k.txl"), "");
    }

    #[test]
    fn fix_is_idempotent_on_its_own_output() {
        let src = "kernel k(a: array) { atomic { a[0] = a[0] + 1; } a[7] = 0; }";
        let once = fix(src);
        let twice = fix(&once.fixed);
        assert!(!twice.changed(), "second pass is a no-op");
        assert_eq!(once.fixed, twice.fixed);
    }

    #[test]
    fn suggested_fix_rides_on_diagnostics() {
        let diags = crate::lint::lint_source_with_fixes(
            "kernel k(a: array) { atomic { a[0] = a[0] + 1; } a[7] = 0; }",
            &LintConfig::default(),
        )
        .unwrap();
        assert_eq!(diags.len(), 1);
        let p = diags[0].suggested_fix.as_ref().expect("TL001 has a known fix");
        assert_eq!(p.rule, Rule::NonAtomicSharedAccess);
        assert_eq!(p.edits.len(), 1);
    }

    #[test]
    fn dynamic_gate_passes_on_repaired_program() {
        let r = fix("kernel k(a: array) { atomic { a[0] = a[0] + 1; } a[7] = 0; }");
        assert!(r.is_clean());
        let dyn_report = dynamic_check(&r.fixed, 7).unwrap();
        assert!(dyn_report.is_clean(), "{:?}", dyn_report.violations);
        assert_eq!(dyn_report.kernels, 1);
    }

    #[test]
    fn dynamic_gate_catches_weak_isolation_race() {
        // The unrepaired TL001 bug: transactional increments race with a
        // plain store to the same array.
        let report = dynamic_check(
            "kernel k(a: array) {
                let i = tid() % 8;
                atomic { a[i] = a[i] + 1; }
                a[7] = 0;
            }",
            7,
        )
        .unwrap();
        assert!(!report.is_clean(), "weak isolation must be observed dynamically");
    }
}
