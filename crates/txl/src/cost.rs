//! Static contention & cost analysis over the TXL AST.
//!
//! Extends the [`crate::footprint`] interval analysis into per-transaction
//! **static profiles**: symbolic read/write-set size bounds (constant /
//! affine-in-loop-trip / unbounded), read-only classification, per-stripe
//! access densities, and a pairwise **conflict graph** with overlap
//! weights across every `atomic` block in a program — then ranks the
//! eight STM variants with a cost model calibrated once against the PR-3
//! telemetry `Breakdown` cycles-per-phase numbers (`BENCH_telemetry.json`;
//! see [`coeff`] for provenance).
//!
//! Soundness contract (checked by `tests/analyze_vs_dynamic.rs`): the
//! conflict graph is a *may* over-approximation — any two dynamically
//! conflicting transactions issued by distinct threads correspond to a
//! pair of blocks joined by an edge. Conversely nothing is promised about
//! precision, and the cost ranking is a heuristic validated empirically
//! (`bench --bin analyze` asserts the recommendation lands within 15% of
//! the best measured variant).
//!
//! Arrays correspond across kernels **by parameter name**: two kernels
//! that both take `table: array` are assumed to be launched over the same
//! array. Callers that bind same-named parameters to disjoint arrays will
//! see spurious (but still sound-for-their-name-discipline) edges.

use crate::ast::{BinOp, Expr, Kernel, Program, Stmt};
use crate::error::TxlError;
use crate::footprint::{self, Interval, ParamFootprint};
use crate::token::Span;
use gpu_sim::JsonWriter;
use std::collections::BTreeSet;
use std::fmt;

/// Threads at or below which per-thread (exact-`tid`) footprints are
/// computed for every block; above it the analysis falls back to the
/// symbolic hull (still sound, far less precise).
const MAX_EXACT_THREADS: u32 = 512;

/// Fixpoint rounds before widening, mirroring `footprint::WIDEN_AFTER`.
const WIDEN_AFTER: usize = 4;

/// Configuration for [`analyze_program`].
#[derive(Clone, Debug)]
pub struct CostConfig {
    /// Assumed concurrent thread count (the launch width the profile is
    /// computed for). Default 256 — the paper's Table 2 scale.
    pub threads: u32,
    /// Ownership-table capacity, reported alongside write-set bounds.
    pub write_set_capacity: Option<u32>,
}

impl Default for CostConfig {
    fn default() -> Self {
        CostConfig { threads: 256, write_set_capacity: None }
    }
}

/// A symbolic upper bound on a per-transaction operation count.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SymBound {
    /// Exactly bounded by a constant (loop-free straight-line code).
    Const(u64),
    /// `base + per_trip · t` for a loop with at most `max_trip` trips.
    Affine {
        /// Loop-independent part.
        base: u64,
        /// Contribution per loop iteration.
        per_trip: u64,
        /// Static bound on the trip count.
        max_trip: u64,
    },
    /// No static bound (unrecognized induction, widened loop).
    Unbounded,
}

impl SymBound {
    /// The numeric upper bound, `None` when unbounded.
    pub fn upper(&self) -> Option<u64> {
        match *self {
            SymBound::Const(n) => Some(n),
            SymBound::Affine { base, per_trip, max_trip } => {
                Some(base.saturating_add(per_trip.saturating_mul(max_trip)))
            }
            SymBound::Unbounded => None,
        }
    }

    /// Upper bound clamped to `cap` (used by the cost model, where an
    /// unbounded transaction is priced at the cap).
    pub fn capped(&self, cap: u64) -> u64 {
        self.upper().unwrap_or(cap).min(cap)
    }

    fn add(self, o: SymBound) -> SymBound {
        use SymBound::*;
        match (self, o) {
            (Unbounded, _) | (_, Unbounded) => Unbounded,
            (Const(a), Const(b)) => Const(a.saturating_add(b)),
            (Const(a), Affine { base, per_trip, max_trip })
            | (Affine { base, per_trip, max_trip }, Const(a)) => {
                Affine { base: base.saturating_add(a), per_trip, max_trip }
            }
            (
                Affine { base: b1, per_trip: p1, max_trip: t1 },
                Affine { base: b2, per_trip: p2, max_trip: t2 },
            ) => Affine {
                base: b1.saturating_add(b2),
                per_trip: p1.saturating_add(p2),
                max_trip: t1.max(t2),
            },
        }
    }

    /// Join of two alternatives (`if` branches): the larger bound, with
    /// unboundedness dominating.
    fn max(self, o: SymBound) -> SymBound {
        match (self.upper(), o.upper()) {
            (None, _) | (_, None) => SymBound::Unbounded,
            (Some(a), Some(b)) => {
                if a >= b {
                    self
                } else {
                    o
                }
            }
        }
    }

    /// `self` per iteration, repeated `trip` times (`None` = unknown trip
    /// count). Zero per-iteration cost stays zero.
    fn scale(self, trip: Option<u64>) -> SymBound {
        if self.upper() == Some(0) {
            return SymBound::Const(0);
        }
        match (trip, self.upper()) {
            (Some(0), _) => SymBound::Const(0),
            (Some(t), Some(per)) => SymBound::Affine { base: 0, per_trip: per, max_trip: t },
            _ => SymBound::Unbounded,
        }
    }

    /// Tightens a count bound with an address-hull width: a write-set
    /// holds distinct addresses, so it can never exceed the hull.
    fn clamp_width(self, width: Option<u64>) -> SymBound {
        match width {
            Some(w) if self.upper().is_none_or(|u| w < u) => SymBound::Const(w),
            _ => self,
        }
    }
}

impl fmt::Display for SymBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SymBound::Const(n) => write!(f, "{n}"),
            SymBound::Affine { base, per_trip, .. } => {
                if base == 0 {
                    write!(f, "{per_trip}*t<={}", self.upper().unwrap())
                } else {
                    write!(f, "{base}+{per_trip}*t<={}", self.upper().unwrap())
                }
            }
            SymBound::Unbounded => f.write_str("unbounded"),
        }
    }
}

/// One array parameter's use by a transaction.
#[derive(Clone, Debug)]
pub struct ArrayUse {
    /// Parameter name (the cross-kernel correlation key).
    pub name: String,
    /// Symbolic (all-threads) read/write hulls.
    pub footprint: ParamFootprint,
    /// Expected threads contending per stripe of the hull:
    /// `threads × per-thread width / hull width`. 1.0 means perfectly
    /// striped; `threads` means every thread hits every stripe.
    pub density: f64,
}

/// Static profile of one `atomic` block.
#[derive(Clone, Debug)]
pub struct TxProfile {
    /// Kernel the block is in.
    pub kernel: String,
    /// Ordinal of the block within its kernel (source order).
    pub index: usize,
    /// 1-based source line of the `atomic`.
    pub line: u32,
    /// Source span of the `atomic` statement.
    pub span: Span,
    /// Bound on transactional read *operations* per execution
    /// (validation work scales with this).
    pub read_ops: SymBound,
    /// Bound on the read-set size (distinct addresses read).
    pub reads: SymBound,
    /// Bound on the write-set size (distinct addresses written).
    pub writes: SymBound,
    /// Bound on how many times one thread executes the block.
    pub execs: SymBound,
    /// Whether the block provably never writes.
    pub read_only: bool,
    /// Per-array uses, in parameter order.
    pub arrays: Vec<ArrayUse>,
    /// Sum of incident conflict-edge rates (filled from the graph);
    /// the TL006 "statically hot" score.
    pub conflict_degree: f64,
}

/// One may-conflict edge between two blocks (`a <= b`; `a == b` is a
/// self-edge: two *different threads* running the same block).
#[derive(Clone, Debug)]
pub struct ConflictEdge {
    /// First endpoint (index into [`StaticProfile::tx`]).
    pub a: usize,
    /// Second endpoint.
    pub b: usize,
    /// Fraction of ordered distinct thread pairs `(i, j)` whose exact
    /// footprints may conflict (1.0 under the symbolic fallback).
    pub rate: f64,
    /// Size of the symbolic touched-hull intersection across the
    /// conflicting arrays — the overlap weight.
    pub overlap: u64,
    /// Names of the arrays the blocks may conflict on.
    pub arrays: Vec<String>,
}

/// The pairwise static conflict graph.
#[derive(Clone, Debug, Default)]
pub struct ConflictGraph {
    /// Number of nodes (= `StaticProfile::tx.len()`).
    pub nodes: usize,
    /// May-conflict edges, lexicographic by `(a, b)`.
    pub edges: Vec<ConflictEdge>,
}

impl ConflictGraph {
    /// Whether blocks `a` and `b` share an edge (order-insensitive).
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        let (a, b) = (a.min(b), a.max(b));
        self.edges.iter().any(|e| e.a == a && e.b == b)
    }

    /// Number of edges incident to `n` (a self-edge counts once).
    pub fn degree(&self, n: usize) -> usize {
        self.edges.iter().filter(|e| e.a == n || e.b == n).count()
    }

    /// Sum of incident edge rates — the contention score TL006
    /// thresholds on.
    pub fn weighted_degree(&self, n: usize) -> f64 {
        self.edges.iter().filter(|e| e.a == n || e.b == n).map(|e| e.rate).sum()
    }
}

/// The eight STM variants the cost model ranks. Mirrors
/// `workloads::Variant` by short name (txl cannot depend on workloads).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum StmKind {
    /// Coarse-grained lock baseline.
    Cgl,
    /// Per-thread-block blocking STM (EGPGV).
    Egpgv,
    /// NOrec-style value-based validation (STM-VBV).
    Vbv,
    /// Timestamp validation + lock sorting.
    TbvSorting,
    /// Hierarchical validation + lock sorting.
    HvSorting,
    /// Hierarchical validation + backoff locking.
    HvBackoff,
    /// Timestamp validation + backoff locking.
    TbvBackoff,
    /// Adaptive HV/TBV selection.
    Optimized,
}

impl StmKind {
    /// Every variant, in `workloads::Variant::ALL` order.
    pub const ALL: [StmKind; 8] = [
        StmKind::Cgl,
        StmKind::Egpgv,
        StmKind::Vbv,
        StmKind::TbvSorting,
        StmKind::HvSorting,
        StmKind::HvBackoff,
        StmKind::TbvBackoff,
        StmKind::Optimized,
    ];

    /// Short name matching `workloads::Variant::short_name`.
    pub fn short_name(self) -> &'static str {
        match self {
            StmKind::Cgl => "cgl",
            StmKind::Egpgv => "egpgv",
            StmKind::Vbv => "vbv",
            StmKind::TbvSorting => "tbv-sorting",
            StmKind::HvSorting => "hv-sorting",
            StmKind::HvBackoff => "hv-backoff",
            StmKind::TbvBackoff => "tbv-backoff",
            StmKind::Optimized => "optimized",
        }
    }

    /// Parses a short name.
    pub fn parse(s: &str) -> Option<StmKind> {
        StmKind::ALL.into_iter().find(|k| k.short_name() == s)
    }
}

impl fmt::Display for StmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// One entry of the variant ranking.
#[derive(Clone, Debug)]
pub struct VariantScore {
    /// The variant.
    pub variant: StmKind,
    /// Predicted total cycles for the whole program at the configured
    /// thread count (relative units — only the ordering is meaningful).
    pub predicted_cycles: f64,
}

/// The whole-program static profile `txl analyze` emits and `tm-serve`
/// consumes to seed per-shard configuration.
#[derive(Clone, Debug)]
pub struct StaticProfile {
    /// Thread count the profile was computed for.
    pub threads: u32,
    /// Per-block profiles, kernels in program order, blocks in source
    /// order. Indices are the conflict-graph node ids.
    pub tx: Vec<TxProfile>,
    /// The pairwise may-conflict graph.
    pub graph: ConflictGraph,
    /// All eight variants, best (fewest predicted cycles) first.
    pub ranking: Vec<VariantScore>,
    /// Recommended lock-table size (power of two).
    pub stripes: u32,
}

impl StaticProfile {
    /// The top-ranked variant.
    pub fn recommended(&self) -> StmKind {
        self.ranking[0].variant
    }

    /// Looks up the profile of the `index`-th block of `kernel`.
    pub fn block(&self, kernel: &str, index: usize) -> Option<&TxProfile> {
        self.tx.iter().find(|t| t.kernel == kernel && t.index == index)
    }
}

// ---------------------------------------------------------------------------
// Calibrated cost-model coefficients.
// ---------------------------------------------------------------------------

/// Cost-model coefficients, in simulated cycles per thread.
///
/// Calibration provenance: fitted once against the committed
/// `bench --bin analyze` measured sweep (`BENCH_analyze.json`: five
/// workloads × 8 variants at 256 threads, simulated cycles), with the
/// PR-3 telemetry `Breakdown` per-phase attribution in
/// `BENCH_telemetry.json` fixing the *shape* of each term — e.g. the
/// read-validation terms are quadratic in read-set size because the
/// telemetry shows LockStm revalidating the whole read log per read,
/// and VBV carries a `VBV_CLOCK × window` term because NOrec
/// serialises commits behind one global clock. The constants are
/// committed as data, not re-derived at runtime; `bench --bin analyze`
/// gates the resulting ranking against fresh measurements (recommended
/// variant within 15% of the best measured throughput per workload).
pub mod coeff {
    /// Read-only fast-path transaction (no locks, no write-back) on
    /// LockStm-family and VBV variants.
    pub const RO_TX: f64 = 15.0;
    /// CGL per-transaction setup, ×threads (one lock serialises all).
    pub const CGL_TX: f64 = 1.35;
    /// CGL per-op cost, ×threads.
    pub const CGL_OP: f64 = 0.535;
    /// EGPGV per-transaction overhead (per-block blocking protocol).
    pub const EG_TX: f64 = 56.0;
    /// EGPGV per-access cost.
    pub const EG_OP: f64 = 50.0;
    /// EGPGV incremental read revalidation, ×r(r−1).
    pub const EG_RVAL: f64 = 10.0;
    /// EGPGV contention penalty, ×conflict degree (serialisation is
    /// per 32-thread block, so the penalty is a constant, not ×λ).
    pub const EG_CONT: f64 = 620.0;
    /// VBV global-clock serialisation, ×window of live transactions.
    pub const VBV_CLOCK: f64 = 23.0;
    /// VBV per-access cost.
    pub const VBV_OP: f64 = 50.0;
    /// VBV value-based revalidation, ×rset width.
    pub const VBV_RVAL: f64 = 10.0;
    /// VBV contention penalty, ×conflict degree.
    pub const VBV_CONT: f64 = 400.0;
    /// LockStm per-transaction setup, sorted-acquisition kinds.
    pub const LOCK_SORT_TX: f64 = 20.0;
    /// LockStm per-transaction setup, backoff kinds (spin baseline).
    pub const LOCK_BACK_TX: f64 = 100.0;
    /// LockStm per-access cost.
    pub const LOCK_OP: f64 = 10.0;
    /// Hierarchical validation, ×r(r−1) (incremental revalidation
    /// filtered by the hierarchy).
    pub const VAL_HV: f64 = 50.0;
    /// Timestamp validation, ×r(r−1) (full-table traffic per read).
    pub const VAL_TBV: f64 = 137.0;
    /// Extra per-read timestamp bookkeeping on TBV kinds, ×r.
    pub const TBV_READ: f64 = 5.0;
    /// Sorted-acquisition abort-retry penalty, ×retries×λ.
    pub const SORT_PEN: f64 = 55.0;
    /// Backoff-acquisition abort-retry penalty, ×retries×λ (backoff
    /// sheds contention instead of re-sorting, so it is cheaper).
    pub const BACK_PEN: f64 = 18.0;
    /// STM-Optimized adaptive-selection overhead per transaction.
    pub const OPT_TX: f64 = 8.0;
    /// Retry cap (mirrors the runtime's backoff escalation).
    pub const MAX_RETRIES: f64 = 8.0;
    /// Effective window of concurrently-live transactions.
    pub const WINDOW: u32 = 48;
    /// Unbounded op counts are priced at this many operations.
    pub const CAP_OPS: u64 = 256;
    /// Per-thread execution counts are priced up to this bound.
    pub const CAP_EXECS: u64 = 16;
}

// ---------------------------------------------------------------------------
// Interval evaluation + trip-count estimation (counting pass).
// ---------------------------------------------------------------------------

type Env = Vec<Interval>;

fn eval_iv(e: &Expr, env: &Env, tid: Interval, nthreads: u32) -> Interval {
    match e {
        Expr::Int(v) => Interval::exact(*v),
        Expr::Var { slot, .. } => env[*slot],
        Expr::Tid => tid,
        Expr::NThreads => Interval::exact(nthreads),
        Expr::Rand(n) => {
            let n = eval_iv(n, env, tid, nthreads);
            Interval { lo: 0, hi: n.hi.saturating_sub(1) }
        }
        Expr::Not(_) => Interval { lo: 0, hi: 1 },
        Expr::Bin { op, lhs, rhs } => {
            let a = eval_iv(lhs, env, tid, nthreads);
            let b = eval_iv(rhs, env, tid, nthreads);
            match op {
                BinOp::Add => a.add(b),
                BinOp::Sub => a.sub(b),
                BinOp::Mul => a.mul(b),
                BinOp::Div => a.div(),
                BinOp::Rem => a.rem(b),
                BinOp::And => Interval { lo: 0, hi: a.hi.min(b.hi) },
                BinOp::Or | BinOp::Xor => a.bit_hull(b),
                BinOp::Shl => a.shl(b),
                BinOp::Shr => a.shr(b),
                BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::AndAnd
                | BinOp::OrOr => Interval { lo: 0, hi: 1 },
            }
        }
        Expr::Index { .. } => Interval::TOP,
    }
}

/// Number of array reads one evaluation of `e` performs.
fn expr_read_count(e: &Expr) -> u64 {
    match e {
        Expr::Int(_) | Expr::Var { .. } | Expr::Tid | Expr::NThreads => 0,
        Expr::Rand(n) => expr_read_count(n),
        Expr::Not(i) => expr_read_count(i),
        Expr::Bin { lhs, rhs, .. } => expr_read_count(lhs) + expr_read_count(rhs),
        Expr::Index { index, .. } => 1 + expr_read_count(index),
    }
}

/// Collects every local slot assigned anywhere in `stmts` (including
/// nested blocks).
fn assigned_slots(stmts: &[Stmt], out: &mut BTreeSet<usize>) {
    for s in stmts {
        match s {
            Stmt::Let { slot, .. } | Stmt::Assign { slot, .. } => {
                out.insert(*slot);
            }
            Stmt::Store { .. } | Stmt::Retry { .. } => {}
            Stmt::If { then_blk, else_blk, .. } => {
                assigned_slots(then_blk, out);
                assigned_slots(else_blk, out);
            }
            Stmt::While { body, .. } => assigned_slots(body, out),
            Stmt::Atomic { body, .. } => assigned_slots(body, out),
        }
    }
}

/// Whether `e` is loop-stable: no `rand`, no array read, and no use of a
/// slot in `assigned`.
fn expr_stable(e: &Expr, assigned: &BTreeSet<usize>) -> bool {
    match e {
        Expr::Int(_) | Expr::Tid | Expr::NThreads => true,
        Expr::Var { slot, .. } => !assigned.contains(slot),
        Expr::Rand(_) | Expr::Index { .. } => false,
        Expr::Not(i) => expr_stable(i, assigned),
        Expr::Bin { lhs, rhs, .. } => expr_stable(lhs, assigned) && expr_stable(rhs, assigned),
    }
}

#[derive(Copy, Clone, PartialEq)]
enum Cmp {
    Lt,
    Le,
    Gt,
    Ge,
    Ne,
}

fn cmp_of(op: BinOp) -> Option<Cmp> {
    match op {
        BinOp::Lt => Some(Cmp::Lt),
        BinOp::Le => Some(Cmp::Le),
        BinOp::Gt => Some(Cmp::Gt),
        BinOp::Ge => Some(Cmp::Ge),
        BinOp::Ne => Some(Cmp::Ne),
        _ => None,
    }
}

fn mirror(c: Cmp) -> Cmp {
    match c {
        Cmp::Lt => Cmp::Gt,
        Cmp::Le => Cmp::Ge,
        Cmp::Gt => Cmp::Lt,
        Cmp::Ge => Cmp::Le,
        Cmp::Ne => Cmp::Ne,
    }
}

/// Upper bound on the trip count of `while cond { body }` entered with
/// locals in `env`, or `None` when no bound is provable.
///
/// Recognised shape: the condition compares an induction variable `i`
/// against a loop-stable bound, and the body updates `i` exactly once,
/// unconditionally, by a positive literal constant (`i = i ± c`).
fn trip_bound(cond: &Expr, body: &[Stmt], env: &Env, tid: Interval, nthreads: u32) -> Option<u64> {
    let mut assigned = BTreeSet::new();
    assigned_slots(body, &mut assigned);

    let (slot, cmp, bound_expr) = match cond {
        Expr::Var { slot, .. } => (*slot, Cmp::Ne, None),
        Expr::Bin { op, lhs, rhs } => {
            let cmp = cmp_of(*op)?;
            match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Var { slot, .. }, b) if expr_stable(b, &assigned) => (*slot, cmp, Some(b)),
                (b, Expr::Var { slot, .. }) if expr_stable(b, &assigned) => {
                    (*slot, mirror(cmp), Some(b))
                }
                _ => return None,
            }
        }
        _ => return None,
    };
    let bound = match bound_expr {
        Some(b) => eval_iv(b, env, tid, nthreads),
        None => Interval::exact(0),
    };

    // Exactly one unconditional top-level update `i = i ± c`, and no
    // other assignment to `i` anywhere in the body.
    let mut updates = Vec::new();
    let mut other = 0usize;
    for s in body {
        match s {
            Stmt::Assign { slot: s2, value, .. } if *s2 == slot => updates.push(value),
            Stmt::Let { slot: s2, .. } if *s2 == slot => other += 1,
            Stmt::If { then_blk, else_blk, .. } => {
                let mut inner = BTreeSet::new();
                assigned_slots(then_blk, &mut inner);
                assigned_slots(else_blk, &mut inner);
                if inner.contains(&slot) {
                    other += 1;
                }
            }
            Stmt::While { body: b, .. } | Stmt::Atomic { body: b, .. } => {
                let mut inner = BTreeSet::new();
                assigned_slots(b, &mut inner);
                if inner.contains(&slot) {
                    other += 1;
                }
            }
            _ => {}
        }
    }
    if other > 0 || updates.len() != 1 {
        return None;
    }
    let is_var = |e: &Expr| matches!(e, Expr::Var { slot: s, .. } if *s == slot);
    let (step, increasing) = match updates[0] {
        Expr::Bin { op: BinOp::Add, lhs, rhs } if is_var(lhs) => match rhs.as_ref() {
            Expr::Int(c) if *c >= 1 => (*c as i64, true),
            _ => return None,
        },
        Expr::Bin { op: BinOp::Add, lhs, rhs } if is_var(rhs) => match lhs.as_ref() {
            Expr::Int(c) if *c >= 1 => (*c as i64, true),
            _ => return None,
        },
        Expr::Bin { op: BinOp::Sub, lhs, rhs } if is_var(lhs) => match rhs.as_ref() {
            Expr::Int(c) if *c >= 1 => (*c as i64, false),
            _ => return None,
        },
        _ => return None,
    };

    let entry = env[slot];
    let (ilo, ihi) = (entry.lo as i64, entry.hi as i64);
    let (blo, bhi) = (bound.lo as i64, bound.hi as i64);
    let ceil_div = |n: i64, d: i64| (n.max(0) + d - 1) / d;
    let trips = if increasing {
        match cmp {
            Cmp::Lt => ceil_div(bhi - ilo, step),
            Cmp::Le if bhi < u32::MAX as i64 => ceil_div(bhi + 1 - ilo, step),
            Cmp::Ne if step == 1 && blo >= ihi => bhi - ilo,
            _ => return None,
        }
    } else {
        match cmp {
            Cmp::Gt => ceil_div(ihi - blo, step),
            Cmp::Ge if blo > 0 => ceil_div(ihi - blo, step) + 1,
            Cmp::Ne if step == 1 && ilo >= bhi => ihi - blo,
            _ => return None,
        }
    };
    Some(trips.max(0) as u64)
}

// ---------------------------------------------------------------------------
// The counting abstract interpreter.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct RawBlock {
    span: Span,
    read_ops: SymBound,
    stores: SymBound,
    execs: SymBound,
}

struct Counter<'k> {
    kernel: &'k Kernel,
    tid: Interval,
    nthreads: u32,
    blocks: Vec<RawBlock>,
    open: Option<usize>,
}

#[derive(Copy, Clone)]
struct Counts {
    reads: SymBound,
    stores: SymBound,
}

impl Counts {
    const ZERO: Counts = Counts { reads: SymBound::Const(0), stores: SymBound::Const(0) };

    fn add(self, o: Counts) -> Counts {
        Counts { reads: self.reads.add(o.reads), stores: self.stores.add(o.stores) }
    }

    fn max(self, o: Counts) -> Counts {
        Counts { reads: self.reads.max(o.reads), stores: self.stores.max(o.stores) }
    }

    fn scale(self, trip: Option<u64>) -> Counts {
        Counts { reads: self.reads.scale(trip), stores: self.stores.scale(trip) }
    }
}

impl<'k> Counter<'k> {
    fn eval(&self, e: &Expr, env: &Env) -> Interval {
        eval_iv(e, env, self.tid, self.nthreads)
    }

    /// Pure env transformer (no counting) — used to reach a loop
    /// invariant before the single counting pass over a loop body.
    fn flow_block(&self, stmts: &[Stmt], env: &mut Env) {
        for s in stmts {
            match s {
                Stmt::Let { slot, init, .. } | Stmt::Assign { slot, value: init, .. } => {
                    env[*slot] = self.eval(init, env);
                }
                Stmt::Store { .. } | Stmt::Retry { .. } => {}
                Stmt::If { then_blk, else_blk, .. } => {
                    let mut then_env = env.clone();
                    self.flow_block(then_blk, &mut then_env);
                    self.flow_block(else_blk, env);
                    for (slot, iv) in env.iter_mut().enumerate() {
                        *iv = iv.join(then_env[slot]);
                    }
                }
                Stmt::While { body, .. } => self.flow_while(body, env),
                Stmt::Atomic { body, .. } => self.flow_block(body, env),
            }
        }
    }

    fn flow_while(&self, body: &[Stmt], env: &mut Env) {
        for round in 0.. {
            let before = env.clone();
            self.flow_block(body, env);
            let mut changed = false;
            for (slot, iv) in env.iter_mut().enumerate() {
                let joined = iv.join(before[slot]);
                if joined != before[slot] {
                    changed = true;
                    if round + 1 >= WIDEN_AFTER {
                        *iv = Interval::TOP;
                        continue;
                    }
                }
                *iv = joined;
            }
            if !changed {
                break;
            }
        }
    }

    /// Counting walk: returns the transactional read/store counts of
    /// `stmts` (meaningful when inside an atomic), creating block
    /// entries for any `atomic` statements encountered. Each syntactic
    /// statement is visited exactly once.
    fn count_block(&mut self, stmts: &[Stmt], env: &mut Env, mult: SymBound) -> Counts {
        let mut total = Counts::ZERO;
        for s in stmts {
            match s {
                Stmt::Let { slot, init, .. } | Stmt::Assign { slot, value: init, .. } => {
                    total.reads = total.reads.add(SymBound::Const(expr_read_count(init)));
                    env[*slot] = self.eval(init, env);
                }
                Stmt::Store { index, value, .. } => {
                    let r = expr_read_count(index) + expr_read_count(value);
                    total.reads = total.reads.add(SymBound::Const(r));
                    total.stores = total.stores.add(SymBound::Const(1));
                }
                Stmt::If { cond, then_blk, else_blk, .. } => {
                    total.reads = total.reads.add(SymBound::Const(expr_read_count(cond)));
                    let mut then_env = env.clone();
                    let then_c = self.count_block(then_blk, &mut then_env, mult);
                    let else_c = self.count_block(else_blk, env, mult);
                    total = total.add(then_c.max(else_c));
                    for (slot, iv) in env.iter_mut().enumerate() {
                        *iv = iv.join(then_env[slot]);
                    }
                }
                // `retry` performs no array accesses of its own; the
                // attempt's reads are already counted on the path that
                // reached it.
                Stmt::Retry { .. } => {}
                Stmt::While { cond, body, .. } => {
                    let trip = trip_bound(cond, body, env, self.tid, self.nthreads);
                    // Reach the loop invariant, then count the body once
                    // under it.
                    let mut inv = env.clone();
                    self.flow_while(body, &mut inv);
                    let mut body_env = inv.clone();
                    let inner_mult = mult.scale(trip).max(SymBound::Const(0));
                    let inner = self.count_block(body, &mut body_env, inner_mult);
                    let cond_reads =
                        SymBound::Const(expr_read_count(cond)).scale(trip.map(|t| t + 1));
                    total = total
                        .add(inner.scale(trip))
                        .add(Counts { reads: cond_reads, stores: SymBound::Const(0) });
                    *env = inv;
                }
                Stmt::Atomic { body, .. } => {
                    if self.open.is_some() {
                        // Nested atomics are rejected by `check`; fold in.
                        let inner = self.count_block(body, env, mult);
                        total = total.add(inner);
                    } else {
                        let idx = self.blocks.len();
                        self.blocks.push(RawBlock {
                            span: s.span(),
                            read_ops: SymBound::Const(0),
                            stores: SymBound::Const(0),
                            execs: mult,
                        });
                        self.open = Some(idx);
                        let inner = self.count_block(body, env, mult);
                        self.blocks[idx].read_ops = inner.reads;
                        self.blocks[idx].stores = inner.stores;
                        self.open = None;
                    }
                }
            }
        }
        total
    }
}

fn count_kernel(kernel: &Kernel, tid: Interval, nthreads: u32) -> Vec<RawBlock> {
    let mut c = Counter { kernel, tid, nthreads, blocks: Vec::new(), open: None };
    let mut env: Env = vec![Interval::exact(0); c.kernel.n_slots];
    c.count_block(&kernel.body, &mut env, SymBound::Const(1));
    c.blocks
}

// ---------------------------------------------------------------------------
// Footprint collection and the conflict graph.
// ---------------------------------------------------------------------------

/// Footprints of one syntactic block (the `footprint` pass emits one
/// entry per *abstract execution*, so looped blocks repeat — join them
/// back into one entry per span).
fn dedupe_atomics(
    atomics: Vec<footprint::AtomicFootprint>,
    nparams: usize,
) -> Vec<(Span, Vec<ParamFootprint>)> {
    let mut out: Vec<(Span, Vec<ParamFootprint>)> = Vec::new();
    for a in atomics {
        if let Some(entry) = out.iter_mut().find(|(s, _)| s.start == a.span.start) {
            for (i, fp) in a.params.iter().enumerate() {
                let dst = &mut entry.1[i];
                if let Some(r) = fp.read {
                    dst.read = Some(dst.read.map_or(r, |o| o.join(r)));
                }
                if let Some(w) = fp.write {
                    dst.write = Some(dst.write.map_or(w, |o| o.join(w)));
                }
            }
        } else {
            let mut params = a.params;
            params.resize(nparams, ParamFootprint::default());
            out.push((a.span, params));
        }
    }
    out.sort_by_key(|(s, _)| s.start);
    out
}

struct BlockData {
    kernel: String,
    index: usize,
    span: Span,
    param_names: Vec<String>,
    sym: Vec<ParamFootprint>,
    per_thread: Option<Vec<Vec<ParamFootprint>>>,
    raw: RawBlock,
}

impl BlockData {
    fn named_sym(&self) -> impl Iterator<Item = (&str, &ParamFootprint)> {
        self.param_names.iter().map(|n| n.as_str()).zip(self.sym.iter())
    }
}

fn fp_for_name<'a>(
    names: &[String],
    fps: &'a [ParamFootprint],
    name: &str,
) -> Option<&'a ParamFootprint> {
    names.iter().position(|n| n == name).map(|i| &fps[i])
}

/// May-conflict over the shared parameter names of two footprint sets.
fn sets_conflict(an: &[String], a: &[ParamFootprint], bn: &[String], b: &[ParamFootprint]) -> bool {
    an.iter()
        .enumerate()
        .any(|(i, name)| fp_for_name(bn, b, name).is_some_and(|other| a[i].conflicts(other)))
}

/// One thread's footprints: per atomic block, a span plus one
/// [`ParamFootprint`] per kernel parameter.
type ThreadFootprints = Vec<(Span, Vec<ParamFootprint>)>;

fn collect_blocks(program: &Program, threads: u32) -> Vec<BlockData> {
    let exact = threads <= MAX_EXACT_THREADS;
    let sym_tid = if threads <= 1 { Interval::exact(0) } else { Interval::new(0, threads - 1) };
    let mut out = Vec::new();
    for kernel in program.kernels.iter() {
        let names: Vec<String> = kernel.params.iter().map(|p| p.name.clone()).collect();
        let sym = dedupe_atomics(
            footprint::kernel_footprint(kernel, sym_tid, threads).atomics,
            names.len(),
        );
        let raw = count_kernel(kernel, sym_tid, threads);
        let per_thread: Option<Vec<ThreadFootprints>> = exact.then(|| {
            (0..threads)
                .map(|t| {
                    dedupe_atomics(
                        footprint::kernel_footprint(kernel, Interval::exact(t), threads).atomics,
                        names.len(),
                    )
                })
                .collect()
        });
        for (bi, (span, fps)) in sym.iter().enumerate() {
            let raw_block =
                raw.iter().find(|r| r.span.start == span.start).cloned().unwrap_or(RawBlock {
                    span: *span,
                    read_ops: SymBound::Unbounded,
                    stores: SymBound::Unbounded,
                    execs: SymBound::Unbounded,
                });
            let pt = per_thread.as_ref().map(|all| {
                all.iter()
                    .map(|blocks| {
                        blocks
                            .iter()
                            .find(|(s, _)| s.start == span.start)
                            .map(|(_, f)| f.clone())
                            .unwrap_or_else(|| vec![ParamFootprint::default(); names.len()])
                    })
                    .collect()
            });
            out.push(BlockData {
                kernel: kernel.name.clone(),
                index: bi,
                span: *span,
                param_names: names.clone(),
                sym: fps.clone(),
                per_thread: pt,
                raw: raw_block,
            });
        }
    }
    out
}

fn build_graph(blocks: &[BlockData], threads: u32) -> ConflictGraph {
    let mut edges = Vec::new();
    let t = threads as usize;
    for a in 0..blocks.len() {
        for b in a..blocks.len() {
            let (ba, bb) = (&blocks[a], &blocks[b]);
            // Two blocks of the same thread execute sequentially and
            // cannot conflict; only distinct-thread pairs matter.
            if t < 2 {
                continue;
            }
            let sym_conflict = sets_conflict(&ba.param_names, &ba.sym, &bb.param_names, &bb.sym);
            if !sym_conflict {
                continue;
            }
            let rate = match (&ba.per_thread, &bb.per_thread) {
                (Some(fa), Some(fb)) => {
                    let mut hits = 0u64;
                    for (i, fi) in fa.iter().enumerate().take(t) {
                        for (j, fj) in fb.iter().enumerate().take(t) {
                            if i != j && sets_conflict(&ba.param_names, fi, &bb.param_names, fj) {
                                hits += 1;
                            }
                        }
                    }
                    hits as f64 / (t as f64 * (t as f64 - 1.0))
                }
                _ => 1.0,
            };
            if rate <= 0.0 {
                continue;
            }
            let mut arrays = Vec::new();
            let mut overlap = 0u64;
            for (name, fp) in ba.named_sym() {
                if let Some(other) = fp_for_name(&bb.param_names, &bb.sym, name) {
                    if fp.conflicts(other) {
                        arrays.push(name.to_string());
                        if let (Some(x), Some(y)) = (fp.touched(), other.touched()) {
                            if x.overlaps(y) {
                                let lo = x.lo.max(y.lo) as u64;
                                let hi = x.hi.min(y.hi) as u64;
                                overlap = overlap.saturating_add(hi - lo + 1);
                            }
                        }
                    }
                }
            }
            edges.push(ConflictEdge { a, b, rate, overlap, arrays });
        }
    }
    ConflictGraph { nodes: blocks.len(), edges }
}

// ---------------------------------------------------------------------------
// The cost model.
// ---------------------------------------------------------------------------

struct ModelInput {
    r_ops: f64,
    rset: f64,
    wset: f64,
    execs: f64,
    degree: f64,
}

fn per_tx_cycles(kind: StmKind, m: &ModelInput, threads: u32) -> f64 {
    use coeff::*;
    let conc = (threads.min(WINDOW)) as f64;
    // Expected number of live conflicting peers for one attempt.
    let lam = m.degree * (conc - 1.0).max(0.0);
    let retries = lam.min(MAX_RETRIES);
    let (r, w, rset) = (m.r_ops, m.wset, m.rset);
    let ops = r + w;
    let rval = r * (r - 1.0).max(0.0);
    match kind {
        // One global lock: every thread's transaction serialises behind
        // all the others, so per-tx cost scales with the thread count.
        StmKind::Cgl => (CGL_TX + CGL_OP * ops) * threads as f64,
        // Per-block blocking protocol: contention serialises whole
        // 32-thread blocks once, it does not retry per peer.
        StmKind::Egpgv => EG_TX + EG_OP * ops + EG_RVAL * rval + EG_CONT * m.degree,
        StmKind::Vbv => {
            if w <= 0.0 {
                RO_TX
            } else {
                // NOrec: commits serialise behind one global clock, and
                // every clock bump revalidates the whole read set.
                VBV_CLOCK * conc + VBV_OP * ops + VBV_RVAL * rset + VBV_CONT * m.degree
            }
        }
        StmKind::Optimized => {
            let hv = per_tx_cycles(StmKind::HvSorting, m, threads);
            let tbv = per_tx_cycles(StmKind::TbvSorting, m, threads);
            hv.min(tbv) + OPT_TX
        }
        StmKind::HvSorting | StmKind::HvBackoff | StmKind::TbvSorting | StmKind::TbvBackoff => {
            let tbv = matches!(kind, StmKind::TbvSorting | StmKind::TbvBackoff);
            if w <= 0.0 {
                // Read-only fast path: validate, never lock.
                return RO_TX + if tbv { TBV_READ * r } else { 0.0 };
            }
            let backoff = matches!(kind, StmKind::HvBackoff | StmKind::TbvBackoff);
            let base = if backoff { LOCK_BACK_TX } else { LOCK_SORT_TX } + LOCK_OP * ops;
            // Incremental revalidation: the k-th read revalidates the
            // k−1 before it, hence the r(r−1) shape.
            let val = if tbv { VAL_TBV * rval + TBV_READ * r } else { VAL_HV * rval };
            // Each retry re-pays the conflict window.
            let pen = retries * lam * if backoff { BACK_PEN } else { SORT_PEN };
            base + val + pen
        }
    }
}

fn rank_variants(inputs: &[ModelInput], threads: u32) -> Vec<VariantScore> {
    let mut scores: Vec<VariantScore> = StmKind::ALL
        .into_iter()
        .map(|kind| {
            let total: f64 = inputs
                .iter()
                .map(|m| m.execs * threads as f64 * per_tx_cycles(kind, m, threads))
                .sum();
            VariantScore { variant: kind, predicted_cycles: total }
        })
        .collect();
    scores.sort_by(|a, b| a.predicted_cycles.total_cmp(&b.predicted_cycles));
    scores
}

fn recommend_stripes(blocks: &[BlockData]) -> u32 {
    // Span of distinct arrays (hulls joined by name across blocks).
    let mut names: Vec<(&str, Interval)> = Vec::new();
    let mut w_max = 1u64;
    for b in blocks {
        for (name, fp) in b.named_sym() {
            if let Some(t) = fp.touched() {
                match names.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, iv)) => *iv = iv.join(t),
                    None => names.push((name, t)),
                }
            }
        }
        w_max = w_max.max(b.raw.stores.capped(64));
    }
    let span: u64 = names.iter().map(|(_, iv)| iv.width().min(1 << 23)).sum();
    // Cover an eighth of the data span (the paper's 8M words : 1M locks
    // ratio) but never so few stripes that two w_max-write transactions
    // alias with probability above ~1/16.
    let want = (span / 8).max(16 * w_max * w_max).clamp(64, 1 << 20);
    (want as u32).next_power_of_two()
}

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

/// Analyzes a checked program into a [`StaticProfile`].
pub fn analyze_program(program: &Program, cfg: &CostConfig) -> StaticProfile {
    let threads = cfg.threads.max(1);
    let blocks = collect_blocks(program, threads);
    let graph = build_graph(&blocks, threads);
    let stripes = recommend_stripes(&blocks);

    let mut tx = Vec::with_capacity(blocks.len());
    let mut inputs = Vec::with_capacity(blocks.len());
    for (i, b) in blocks.iter().enumerate() {
        // Per-transaction hull widths: exact per-thread widths when
        // available (max over threads), else the symbolic hull.
        let width_of = |sel: fn(&ParamFootprint) -> Option<Interval>| -> Option<u64> {
            let sum = |fps: &[ParamFootprint]| -> u64 {
                fps.iter().filter_map(sel).map(|iv| iv.width()).sum()
            };
            match &b.per_thread {
                Some(pt) => pt.iter().map(|fps| sum(fps)).max(),
                None => Some(sum(&b.sym)),
            }
        };
        let writes = b.raw.stores.clamp_width(width_of(|f| f.write));
        let reads = b.raw.read_ops.clamp_width(width_of(|f| f.read));
        let read_only = b.raw.stores.upper() == Some(0);
        let degree = graph.weighted_degree(i);
        let arrays = b
            .named_sym()
            .filter(|(_, fp)| fp.touched().is_some())
            .map(|(name, fp)| {
                let hull_w = fp.touched().map(|iv| iv.width()).unwrap_or(1).max(1);
                let thread_w = match &b.per_thread {
                    Some(pt) => pt
                        .iter()
                        .filter_map(|fps| {
                            fp_for_name(&b.param_names, fps, name)
                                .and_then(|f| f.touched())
                                .map(|iv| iv.width())
                        })
                        .max()
                        .unwrap_or(0),
                    None => hull_w,
                };
                ArrayUse {
                    name: name.to_string(),
                    footprint: *fp,
                    density: threads as f64 * thread_w as f64 / hull_w as f64,
                }
            })
            .collect();
        inputs.push(ModelInput {
            r_ops: b.raw.read_ops.capped(coeff::CAP_OPS) as f64,
            rset: reads.capped(coeff::CAP_OPS) as f64,
            wset: writes.capped(coeff::CAP_OPS) as f64,
            execs: b.raw.execs.capped(coeff::CAP_EXECS) as f64,
            degree,
        });
        tx.push(TxProfile {
            kernel: b.kernel.clone(),
            index: b.index,
            line: b.span.line,
            span: b.span,
            read_ops: b.raw.read_ops,
            reads,
            writes,
            execs: b.raw.execs,
            read_only,
            arrays,
            conflict_degree: degree,
        });
    }
    let ranking = rank_variants(&inputs, threads);
    StaticProfile { threads, tx, graph, ranking, stripes }
}

/// Compiles `src` and analyzes it: the `txl analyze` front door.
///
/// # Errors
///
/// Any [`TxlError`] from lexing, parsing or semantic checking.
pub fn analyze_source(src: &str, cfg: &CostConfig) -> Result<StaticProfile, TxlError> {
    let program = crate::compile(src)?;
    Ok(analyze_program(&program, cfg))
}

// ---------------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------------

/// Deterministic text rendering (the CLI default and the bench golden).
pub fn render_text(profile: &StaticProfile) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "threads={} stripes={} recommended={}",
        profile.threads,
        profile.stripes,
        profile.recommended()
    );
    for (i, t) in profile.tx.iter().enumerate() {
        let _ = writeln!(
            s,
            "tx#{i} {}#{} line={} reads<={} writes<={} read_ops<={} execs<={} read_only={} degree={:.3}",
            t.kernel,
            t.index,
            t.line,
            t.reads,
            t.writes,
            t.read_ops,
            t.execs,
            if t.read_only { "yes" } else { "no" },
            t.conflict_degree,
        );
        for a in &t.arrays {
            let hull = a.footprint.touched().map(|iv| iv.to_string()).unwrap_or_default();
            let _ = writeln!(s, "  array {} hull={} density={:.2}", a.name, hull, a.density);
        }
    }
    let _ = writeln!(s, "graph nodes={} edges={}", profile.graph.nodes, profile.graph.edges.len());
    for e in &profile.graph.edges {
        let _ = writeln!(
            s,
            "  edge {}<->{} rate={:.3} overlap={} arrays={}",
            e.a,
            e.b,
            e.rate,
            e.overlap,
            e.arrays.join(",")
        );
    }
    let ranking: Vec<String> = profile
        .ranking
        .iter()
        .map(|v| format!("{}={:.0}", v.variant, v.predicted_cycles))
        .collect();
    let _ = writeln!(s, "ranking {}", ranking.join(" "));
    s
}

fn bound_json(w: &mut JsonWriter, key: &str, b: SymBound) {
    w.key(key);
    w.begin_object();
    match b {
        SymBound::Const(n) => {
            w.field_str("kind", "const");
            w.field_u64("upper", n);
        }
        SymBound::Affine { base, per_trip, max_trip } => {
            w.field_str("kind", "affine");
            w.field_u64("base", base);
            w.field_u64("per_trip", per_trip);
            w.field_u64("max_trip", max_trip);
            w.field_u64("upper", b.upper().unwrap());
        }
        SymBound::Unbounded => {
            w.field_str("kind", "unbounded");
        }
    }
    w.end_object();
}

/// Serializes a profile into an open [`JsonWriter`] object (stable field
/// order; shared by the CLI `--format json` and `bench --bin analyze`).
pub fn write_profile_json(w: &mut JsonWriter, profile: &StaticProfile) {
    w.field_u64("threads", profile.threads as u64);
    w.field_u64("stripes", profile.stripes as u64);
    w.field_str("recommended", profile.recommended().short_name());
    w.key("tx");
    w.begin_array();
    for t in &profile.tx {
        w.begin_object();
        w.field_str("kernel", &t.kernel);
        w.field_u64("index", t.index as u64);
        w.field_u64("line", t.line as u64);
        bound_json(w, "read_ops", t.read_ops);
        bound_json(w, "reads", t.reads);
        bound_json(w, "writes", t.writes);
        bound_json(w, "execs", t.execs);
        w.field_bool("read_only", t.read_only);
        w.field_f64("conflict_degree", t.conflict_degree);
        w.key("arrays");
        w.begin_array();
        for a in &t.arrays {
            w.begin_object();
            w.field_str("name", &a.name);
            if let Some(iv) = a.footprint.touched() {
                w.field_u64("lo", iv.lo as u64);
                w.field_u64("hi", iv.hi as u64);
            }
            w.field_f64("density", a.density);
            w.end_object();
        }
        w.end_array();
        w.end_object();
    }
    w.end_array();
    w.key("graph");
    w.begin_array();
    for e in &profile.graph.edges {
        w.begin_object();
        w.field_u64("a", e.a as u64);
        w.field_u64("b", e.b as u64);
        w.field_f64("rate", e.rate);
        w.field_u64("overlap", e.overlap);
        w.field_str("arrays", &e.arrays.join(","));
        w.end_object();
    }
    w.end_array();
    w.key("ranking");
    w.begin_array();
    for v in &profile.ranking {
        w.begin_object();
        w.field_str("variant", v.variant.short_name());
        w.field_f64("predicted_cycles", v.predicted_cycles);
        w.end_object();
    }
    w.end_array();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str, threads: u32) -> StaticProfile {
        analyze_source(src, &CostConfig { threads, write_set_capacity: None }).expect("compiles")
    }

    #[test]
    fn hot_counter_is_maximally_contended() {
        let p = analyze(
            "kernel hot(c: array) {
                 atomic { c[0] = c[0] + 1; }
             }",
            64,
        );
        assert_eq!(p.tx.len(), 1);
        assert_eq!(p.tx[0].writes, SymBound::Const(1));
        assert!(!p.tx[0].read_only);
        assert!(p.graph.has_edge(0, 0));
        assert!((p.tx[0].conflict_degree - 1.0).abs() < 1e-9, "every thread pair collides");
        assert_eq!(p.stripes, 64);
    }

    #[test]
    fn striped_blocks_have_no_edges() {
        let p = analyze(
            "kernel striped(a: array) {
                 let base = tid() * 4;
                 atomic {
                     a[base] = a[base] + 1;
                     a[base + 3] = a[base + 3] + 1;
                 }
             }",
            64,
        );
        assert_eq!(p.tx.len(), 1);
        assert!(p.graph.edges.is_empty(), "per-thread footprints are disjoint");
        assert_eq!(p.tx[0].conflict_degree, 0.0);
        // Write-set: 2 stores, and the per-thread hull width (4) does
        // not tighten below the count.
        assert_eq!(p.tx[0].writes.upper(), Some(2));
    }

    #[test]
    fn loop_bound_is_affine() {
        let p = analyze(
            "kernel scan(a: array) {
                 atomic {
                     let i = 0;
                     while i < 8 {
                         a[i] = a[i] + 1;
                         i = i + 1;
                     }
                 }
             }",
            8,
        );
        let t = &p.tx[0];
        assert!(matches!(t.writes, SymBound::Affine { .. } | SymBound::Const(_)), "{:?}", t.writes);
        assert_eq!(t.writes.upper(), Some(8));
        assert!(t.read_ops.upper().unwrap() >= 8);
    }

    #[test]
    fn countdown_loop_is_bounded() {
        let p = analyze(
            "kernel down(a: array) {
                 atomic {
                     let i = 6;
                     while i > 0 {
                         a[i] = 1;
                         i = i - 1;
                     }
                 }
             }",
            4,
        );
        assert_eq!(p.tx[0].writes.upper(), Some(6));
    }

    #[test]
    fn data_dependent_loop_is_unbounded_but_width_clamped() {
        let p = analyze(
            "kernel chase(a: array[16]) {
                 atomic {
                     let i = a[0];
                     while i {
                         a[i % 16] = 1;
                         i = a[i % 16];
                     }
                 }
             }",
            4,
        );
        // The trip count is data-dependent (unbounded), but the write
        // hull is clamped by the declared length, so the write-*set*
        // bound stays finite.
        assert!(p.tx[0].writes.upper().is_some_and(|u| u <= 16));
        assert_eq!(p.tx[0].read_ops, SymBound::Unbounded);
    }

    #[test]
    fn read_only_block_is_classified() {
        let p = analyze(
            "kernel audit(a: array, out: array) {
                 let s = 0;
                 atomic { s = a[0] + a[1]; }
                 out[tid()] = s;
             }",
            16,
        );
        assert_eq!(p.tx.len(), 1);
        assert!(p.tx[0].read_only);
        assert_eq!(p.tx[0].writes, SymBound::Const(0));
        assert_eq!(p.tx[0].read_ops, SymBound::Const(2));
    }

    #[test]
    fn cross_kernel_edges_match_by_name() {
        let p = analyze(
            "kernel writer(table: array) {
                 atomic { table[tid() % 4] = 1; }
             }
             kernel reader(table: array, other: array) {
                 let x = 0;
                 atomic { x = table[tid() % 4]; }
                 other[tid()] = x;
             }",
            8,
        );
        assert_eq!(p.tx.len(), 2);
        assert!(p.graph.has_edge(0, 1), "same-named `table` must correlate across kernels");
        assert!(p.tx[1].read_only);
    }

    #[test]
    fn atomic_inside_loop_multiplies_execs() {
        let p = analyze(
            "kernel reps(a: array) {
                 let k = 0;
                 while k < 5 {
                     atomic { a[0] = a[0] + 1; }
                     k = k + 1;
                 }
             }",
            4,
        );
        assert_eq!(p.tx[0].execs.upper(), Some(5));
    }

    #[test]
    fn ranking_is_total_and_deterministic() {
        let src = "kernel hot(c: array) { atomic { c[0] = c[0] + 1; } }";
        let a = analyze(src, 256);
        let b = analyze(src, 256);
        assert_eq!(a.ranking.len(), StmKind::ALL.len());
        let names: Vec<&str> = a.ranking.iter().map(|v| v.variant.short_name()).collect();
        let names2: Vec<&str> = b.ranking.iter().map(|v| v.variant.short_name()).collect();
        assert_eq!(names, names2);
        // A maximally-hot single counter should not recommend VBV (whole
        // read-set revalidation per peer commit is its worst case).
        assert_ne!(a.recommended(), StmKind::Vbv);
    }

    #[test]
    fn short_names_are_unique_and_parse() {
        let set: std::collections::HashSet<_> =
            StmKind::ALL.iter().map(|k| k.short_name()).collect();
        assert_eq!(set.len(), StmKind::ALL.len());
        for k in StmKind::ALL {
            assert_eq!(StmKind::parse(k.short_name()), Some(k));
        }
        assert_eq!(StmKind::parse("nope"), None);
    }

    #[test]
    fn sym_bound_algebra() {
        let c2 = SymBound::Const(2);
        let aff = SymBound::Affine { base: 1, per_trip: 3, max_trip: 4 };
        assert_eq!(aff.upper(), Some(13));
        assert_eq!(c2.add(aff).upper(), Some(15));
        assert_eq!(c2.max(aff).upper(), Some(13));
        assert_eq!(SymBound::Unbounded.add(c2), SymBound::Unbounded);
        assert_eq!(c2.scale(Some(3)).upper(), Some(6));
        assert_eq!(c2.scale(None), SymBound::Unbounded);
        assert_eq!(SymBound::Const(0).scale(None), SymBound::Const(0));
        assert_eq!(SymBound::Unbounded.clamp_width(Some(7)), SymBound::Const(7));
        assert_eq!(c2.clamp_width(Some(7)), c2);
        assert_eq!(format!("{}", aff), "1+3*t<=13");
        assert_eq!(format!("{}", SymBound::Unbounded), "unbounded");
    }

    #[test]
    fn render_text_is_stable() {
        let src = "kernel hot(c: array) { atomic { c[0] = c[0] + 1; } }";
        let p = analyze(src, 64);
        let a = render_text(&p);
        let b = render_text(&p);
        assert_eq!(a, b);
        assert!(a.contains("recommended="));
        assert!(a.contains("tx#0 hot#0"));
        let mut w = JsonWriter::new();
        w.begin_object();
        write_profile_json(&mut w, &p);
        w.end_object();
        let json = w.finish();
        assert!(json.contains("\"recommended\""));
    }
}
