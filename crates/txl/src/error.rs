//! TXL error types: lexing, parsing, semantic checking and runtime.

use crate::token::Span;
use std::error::Error;
use std::fmt;

/// Any failure across the TXL pipeline.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum TxlError {
    /// Lexical error.
    Lex {
        /// 1-based source line.
        line: u32,
        /// Byte range of the offending text.
        span: Span,
        /// Description.
        message: String,
    },
    /// Syntax error.
    Parse {
        /// 1-based source line (0 = end of input).
        line: u32,
        /// Byte range of the offending token (empty at end of input).
        span: Span,
        /// Description.
        message: String,
    },
    /// Semantic error (undeclared names, nested atomics, …).
    Check {
        /// Kernel in which the error occurred.
        kernel: String,
        /// Description.
        message: String,
    },
    /// Runtime error during kernel execution.
    Runtime {
        /// Description (includes the offending lane and thread).
        message: String,
    },
    /// Underlying simulator error.
    Sim(gpu_sim::SimError),
}

impl fmt::Display for TxlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxlError::Lex { line, span, message } => {
                write!(f, "lex error at line {line} ({span}): {message}")
            }
            TxlError::Parse { line, span, message } => {
                write!(f, "parse error at line {line} ({span}): {message}")
            }
            TxlError::Check { kernel, message } => {
                write!(f, "check error in kernel `{kernel}`: {message}")
            }
            TxlError::Runtime { message } => write!(f, "runtime error: {message}"),
            TxlError::Sim(e) => write!(f, "simulator error: {e}"),
        }
    }
}

impl Error for TxlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TxlError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<gpu_sim::SimError> for TxlError {
    fn from(e: gpu_sim::SimError) -> Self {
        TxlError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = TxlError::Check { kernel: "k".into(), message: "nested atomic".into() };
        assert!(e.to_string().contains("kernel `k`"));
        let e: TxlError = gpu_sim::SimError::OutOfMemory { requested: 1 }.into();
        assert!(e.to_string().contains("simulator"));
    }
}
