//! The TXL abstract syntax tree.
//!
//! All values are 32-bit words (this is a word-based STM, Section 3.1).
//! Comparisons and logical operators produce 0/1. Local variables are
//! resolved to dense slots by the checker; array parameters are bound to
//! device allocations at launch.
//!
//! Statements and array accesses carry their source [`Span`] so semantic
//! diagnostics and [`crate::lint`] findings point at real source bytes.

use crate::token::Span;

/// Binary operators.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (wrapping)
    Add,
    /// `-` (wrapping)
    Sub,
    /// `*` (wrapping)
    Mul,
    /// `/` (0 when dividing by zero, like CUDA's defined-behaviour idiom)
    Div,
    /// `%` (0 when dividing by zero)
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<` (modulo 32)
    Shl,
    /// `>>` (modulo 32)
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (evaluates both sides; 0/1)
    AndAnd,
    /// `||` (evaluates both sides; 0/1)
    OrOr,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(u32),
    /// Local variable, resolved to a slot by the checker.
    Var {
        /// Source name.
        name: String,
        /// Slot index (filled by the checker; `usize::MAX` before).
        slot: usize,
    },
    /// Array element read: `name[index]`.
    Index {
        /// Array parameter name.
        array: String,
        /// Parameter index (filled by the checker).
        param: usize,
        /// Element index expression.
        index: Box<Expr>,
        /// Source bytes of the whole `name[index]` access.
        span: Span,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Logical negation `!e` (0/1).
    Not(Box<Expr>),
    /// `rand(n)`: uniform per-lane value in `0..n`.
    Rand(Box<Expr>),
    /// `tid()`: the global thread id.
    Tid,
    /// `nthreads()`: total threads in the launch.
    NThreads,
}

/// Statements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `let name = expr;` — declares a local.
    Let {
        /// Variable name.
        name: String,
        /// Slot (filled by the checker).
        slot: usize,
        /// Initialiser.
        init: Expr,
        /// Source bytes of the statement.
        span: Span,
    },
    /// `name = expr;`
    Assign {
        /// Variable name.
        name: String,
        /// Slot (filled by the checker).
        slot: usize,
        /// New value.
        value: Expr,
        /// Source bytes of the statement.
        span: Span,
    },
    /// `array[index] = value;`
    Store {
        /// Array parameter name.
        array: String,
        /// Parameter index (filled by the checker).
        param: usize,
        /// Element index expression.
        index: Expr,
        /// Value expression.
        value: Expr,
        /// Source bytes of the statement.
        span: Span,
    },
    /// `if cond { .. } else { .. }`
    If {
        /// Condition (nonzero = taken).
        cond: Expr,
        /// Then-branch.
        then_blk: Vec<Stmt>,
        /// Else-branch (possibly empty).
        else_blk: Vec<Stmt>,
        /// Source bytes of the statement.
        span: Span,
    },
    /// `while cond { .. }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
        /// Source bytes of the statement.
        span: Span,
    },
    /// `retry;` — abandon the current transaction attempt and block the
    /// lane until some location it has read is overwritten by another
    /// commit (the composable-blocking primitive; lowered by the
    /// interpreter to abort-and-respin, the semantics `gpu_stm::park`
    /// makes cheap). Only legal inside `atomic { .. }`.
    Retry {
        /// Source bytes of the statement.
        span: Span,
    },
    /// `atomic { .. }` — a transaction. `checkpoint` is the set of local
    /// slots the instrumentation pass determined must be saved/restored
    /// across retries (the paper's compiler-determined register
    /// checkpointing, Section 3.2.3).
    Atomic {
        /// Transaction body.
        body: Vec<Stmt>,
        /// Local slots to checkpoint before each attempt.
        checkpoint: Vec<usize>,
        /// Source bytes of the statement.
        span: Span,
    },
}

impl Stmt {
    /// The statement's source span.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Let { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::Store { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::Retry { span }
            | Stmt::Atomic { span, .. } => *span,
        }
    }
}

/// An array parameter of a kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared length, if the program fixed one (checked against the
    /// binding at launch).
    pub declared_len: Option<u32>,
}

/// A kernel definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Kernel {
    /// Kernel name.
    pub name: String,
    /// Array parameters.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Number of local slots (filled by the checker).
    pub n_slots: usize,
}

/// A parsed program: one or more kernels.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// Kernels in declaration order.
    pub kernels: Vec<Kernel>,
}

impl Program {
    /// Looks up a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&Kernel> {
        self.kernels.iter().find(|k| k.name == name)
    }
}
