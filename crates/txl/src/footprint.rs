//! Abstract interpretation of TXL kernels over an interval lattice,
//! computing per-array may-read/may-write *footprints*.
//!
//! Every expression is evaluated to an [`Interval`] `[lo, hi]` of possible
//! `u32` values (`⊤ = [0, u32::MAX]`); array subscripts then accumulate
//! into per-parameter read/write interval hulls. Two consumers:
//!
//! - **DPOR pruning** (`tm-verify`): with `tid` bound to a concrete
//!   thread id, [`thread_footprint`] over-approximates every address the
//!   thread can touch in a parameter. When all threads' footprints are
//!   pairwise disjoint, their data accesses provably never conflict and
//!   the model checker need not branch on their order.
//! - **Lint TL005** ([`crate::lint`]): with `tid` symbolic
//!   (`[0, nthreads)`), per-`atomic`-block footprints plus the order in
//!   which each block *first* touches each parameter expose
//!   statically-overlapping footprints acquired in different orders —
//!   the classic lock-order-inversion shape of the paper's Section 2.2.
//!
//! The analysis is a *may* analysis: soundness means every concrete
//! access lies inside the reported hull, never that the hull is tight.
//! Loops are handled by bounded iteration to a fixpoint with widening to
//! `⊤` after [`WIDEN_AFTER`] rounds, so analysis always terminates.

use crate::ast::{BinOp, Expr, Kernel, Stmt};
use crate::token::Span;

/// How many fixpoint rounds a `while` body is re-interpreted before
/// still-growing locals are widened to `⊤`.
const WIDEN_AFTER: usize = 4;

/// A closed interval of `u32` values — the abstract domain.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: u32,
    /// Largest possible value.
    pub hi: u32,
}

impl Interval {
    /// The full range (`⊤`): nothing is known about the value.
    pub const TOP: Interval = Interval { lo: 0, hi: u32::MAX };

    /// The interval holding exactly `v`.
    pub fn exact(v: u32) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// `[lo, hi]`; panics if `lo > hi`.
    pub fn new(lo: u32, hi: u32) -> Interval {
        assert!(lo <= hi, "bad interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// Whether this is the full range.
    pub fn is_top(self) -> bool {
        self == Interval::TOP
    }

    /// Least upper bound (interval hull).
    pub fn join(self, o: Interval) -> Interval {
        Interval { lo: self.lo.min(o.lo), hi: self.hi.max(o.hi) }
    }

    /// Whether the two intervals share any value.
    pub fn overlaps(self, o: Interval) -> bool {
        self.lo <= o.hi && o.lo <= self.hi
    }

    /// Number of values in the interval (saturating).
    pub fn width(self) -> u64 {
        self.hi as u64 - self.lo as u64 + 1
    }

    fn from_u64(lo: u64, hi: u64) -> Interval {
        if hi > u32::MAX as u64 {
            // A bound escaped u32: wrapping semantics make any value
            // possible.
            Interval::TOP
        } else {
            Interval { lo: lo as u32, hi: hi as u32 }
        }
    }

    pub(crate) fn add(self, o: Interval) -> Interval {
        Interval::from_u64(self.lo as u64 + o.lo as u64, self.hi as u64 + o.hi as u64)
    }

    pub(crate) fn sub(self, o: Interval) -> Interval {
        if o.hi <= self.lo {
            Interval { lo: self.lo - o.hi, hi: self.hi - o.lo }
        } else {
            // May wrap below zero.
            Interval::TOP
        }
    }

    pub(crate) fn mul(self, o: Interval) -> Interval {
        Interval::from_u64(self.lo as u64 * o.lo as u64, self.hi as u64 * o.hi as u64)
    }

    pub(crate) fn div(self) -> Interval {
        // TXL defines x / 0 = 0, so the result never exceeds the
        // dividend.
        Interval { lo: 0, hi: self.hi }
    }

    pub(crate) fn rem(self, o: Interval) -> Interval {
        // TXL defines x % 0 = 0; otherwise the result is < divisor and
        // never exceeds the dividend.
        if o.lo == o.hi && o.lo > 0 {
            let d = o.lo;
            let (lo, hi) = (self.lo % d, self.hi % d);
            // The dividend range stays within one period of the
            // divisor, so the remainder is monotone across it.
            if self.hi - self.lo < d && lo <= hi {
                return Interval { lo, hi };
            }
        }
        Interval { lo: 0, hi: self.hi.min(o.hi.saturating_sub(1)) }
    }

    pub(crate) fn bit_hull(self, o: Interval) -> Interval {
        // |, ^, &-with-unknowns: bounded by an all-ones mask covering the
        // larger operand's bit-length.
        let m = self.hi | o.hi;
        let hi = if m == 0 {
            0
        } else {
            let bits = 32 - m.leading_zeros();
            if bits >= 32 {
                u32::MAX
            } else {
                (1u32 << bits) - 1
            }
        };
        Interval { lo: 0, hi }
    }

    pub(crate) fn shl(self, o: Interval) -> Interval {
        if o.hi >= 32 {
            return Interval::TOP;
        }
        Interval::from_u64((self.lo as u64) << o.lo, (self.hi as u64) << o.hi)
    }

    pub(crate) fn shr(self, o: Interval) -> Interval {
        if o.hi >= 32 {
            // The interpreter shifts modulo 32 (`wrapping_shr`), so a
            // shift interval reaching 32 admits an effective shift of 0
            // and the result can be as large as the dividend.
            return Interval { lo: 0, hi: self.hi };
        }
        Interval { lo: self.lo >> o.hi, hi: self.hi >> o.lo }
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_top() {
            f.write_str("[⊤]")
        } else if self.lo == self.hi {
            write!(f, "[{}]", self.lo)
        } else {
            write!(f, "[{}..{}]", self.lo, self.hi)
        }
    }
}

/// The may-read/may-write index hulls of one array parameter
/// (`None` = the code never touches it on any path).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ParamFootprint {
    /// Hull of indices possibly read.
    pub read: Option<Interval>,
    /// Hull of indices possibly written.
    pub write: Option<Interval>,
}

impl ParamFootprint {
    /// Hull of all accesses, read or write.
    pub fn touched(&self) -> Option<Interval> {
        match (self.read, self.write) {
            (Some(r), Some(w)) => Some(r.join(w)),
            (a, b) => a.or(b),
        }
    }

    /// Whether two footprints may *conflict*: an index both touch, with at
    /// least one side writing.
    pub fn conflicts(&self, other: &ParamFootprint) -> bool {
        let rw = |a: Option<Interval>, b: Option<Interval>| match (a, b) {
            (Some(x), Some(y)) => x.overlaps(y),
            _ => false,
        };
        rw(self.write, other.read) || rw(self.read, other.write) || rw(self.write, other.write)
    }

    fn record(&mut self, write: bool, iv: Interval) {
        let slot = if write { &mut self.write } else { &mut self.read };
        *slot = Some(slot.map_or(iv, |old| old.join(iv)));
    }
}

/// Footprint of one `atomic { .. }` block: per-parameter hulls plus the
/// order in which the block first touches each parameter — its effective
/// stripe-acquisition order for TL005.
#[derive(Clone, Debug)]
pub struct AtomicFootprint {
    /// Source span of the `atomic` statement.
    pub span: Span,
    /// Per-parameter hulls, indexed like `Kernel::params`.
    pub params: Vec<ParamFootprint>,
    /// Parameter indices in order of first (syntactic) access.
    pub first_order: Vec<usize>,
}

/// Whole-kernel analysis result.
#[derive(Clone, Debug)]
pub struct KernelFootprint {
    /// Per-parameter hulls over the *entire* kernel (transactional and
    /// plain accesses alike), indexed like `Kernel::params`.
    pub params: Vec<ParamFootprint>,
    /// One entry per `atomic` block, in source order.
    pub atomics: Vec<AtomicFootprint>,
}

struct Analyzer<'k> {
    kernel: &'k Kernel,
    tid: Interval,
    nthreads: u32,
    whole: Vec<ParamFootprint>,
    atomics: Vec<AtomicFootprint>,
    /// Innermost open atomic block, as an index into `atomics`.
    open_atomic: Option<usize>,
}

type Env = Vec<Interval>;

impl<'k> Analyzer<'k> {
    fn record(&mut self, param: usize, write: bool, iv: Interval) {
        self.whole[param].record(write, iv);
        if let Some(a) = self.open_atomic {
            let blk = &mut self.atomics[a];
            blk.params[param].record(write, iv);
            if !blk.first_order.contains(&param) {
                blk.first_order.push(param);
            }
        }
    }

    fn eval(&mut self, e: &Expr, env: &mut Env) -> Interval {
        match e {
            Expr::Int(v) => Interval::exact(*v),
            Expr::Var { slot, .. } => env[*slot],
            Expr::Tid => self.tid,
            Expr::NThreads => Interval::exact(self.nthreads),
            Expr::Rand(n) => {
                let n = self.eval(n, env);
                // rand(n) ∈ [0, n-1]; rand(0) = 0.
                Interval { lo: 0, hi: n.hi.saturating_sub(1) }
            }
            Expr::Not(inner) => {
                self.eval(inner, env);
                Interval { lo: 0, hi: 1 }
            }
            Expr::Bin { op, lhs, rhs } => {
                let a = self.eval(lhs, env);
                let b = self.eval(rhs, env);
                match op {
                    BinOp::Add => a.add(b),
                    BinOp::Sub => a.sub(b),
                    BinOp::Mul => a.mul(b),
                    BinOp::Div => a.div(),
                    BinOp::Rem => a.rem(b),
                    BinOp::And => Interval { lo: 0, hi: a.hi.min(b.hi) },
                    BinOp::Or | BinOp::Xor => a.bit_hull(b),
                    BinOp::Shl => a.shl(b),
                    BinOp::Shr => a.shr(b),
                    BinOp::Eq
                    | BinOp::Ne
                    | BinOp::Lt
                    | BinOp::Le
                    | BinOp::Gt
                    | BinOp::Ge
                    | BinOp::AndAnd
                    | BinOp::OrOr => Interval { lo: 0, hi: 1 },
                }
            }
            Expr::Index { param, index, .. } => {
                let iv = self.eval(index, env);
                self.record(*param, false, self.clamp_to_len(*param, iv));
                // Array contents are unknown.
                Interval::TOP
            }
        }
    }

    /// Indices beyond a declared length trap at runtime (the kernel
    /// aborts before the access executes), so the executed footprint
    /// never exceeds the array.
    fn clamp_to_len(&self, param: usize, iv: Interval) -> Interval {
        match self.kernel.params[param].declared_len {
            Some(n) if n > 0 => Interval { lo: iv.lo.min(n - 1), hi: iv.hi.min(n - 1) },
            _ => iv,
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt], env: &mut Env) {
        for s in stmts {
            self.exec_stmt(s, env);
        }
    }

    fn exec_stmt(&mut self, stmt: &Stmt, env: &mut Env) {
        match stmt {
            Stmt::Let { slot, init, .. } | Stmt::Assign { slot, value: init, .. } => {
                env[*slot] = self.eval(init, env);
            }
            Stmt::Store { param, index, value, .. } => {
                let iv = self.eval(index, env);
                self.eval(value, env);
                self.record(*param, true, self.clamp_to_len(*param, iv));
            }
            Stmt::If { cond, then_blk, else_blk, .. } => {
                self.eval(cond, env);
                let mut then_env = env.clone();
                self.exec_block(then_blk, &mut then_env);
                self.exec_block(else_blk, env);
                for (slot, iv) in env.iter_mut().enumerate() {
                    *iv = iv.join(then_env[slot]);
                }
            }
            // `retry` touches no arrays; the respun attempt re-runs the
            // same body, so its footprint is already the block's.
            Stmt::Retry { .. } => {}
            Stmt::While { cond, body, .. } => {
                // Bounded fixpoint: re-interpret the body until locals
                // stabilise, widening whatever still grows.
                for round in 0.. {
                    let before = env.clone();
                    self.eval(cond, env);
                    self.exec_block(body, env);
                    let mut changed = false;
                    for (slot, iv) in env.iter_mut().enumerate() {
                        let joined = iv.join(before[slot]);
                        if joined != before[slot] {
                            changed = true;
                            if round + 1 >= WIDEN_AFTER {
                                *iv = Interval::TOP;
                                continue;
                            }
                        }
                        *iv = joined;
                    }
                    if !changed {
                        break;
                    }
                }
            }
            Stmt::Atomic { body, .. } => {
                // Nested atomics are rejected by `check`; still, keep the
                // outermost block open if one exists.
                let fresh = self.open_atomic.is_none();
                if fresh {
                    self.atomics.push(AtomicFootprint {
                        span: stmt.span(),
                        params: vec![ParamFootprint::default(); self.kernel.params.len()],
                        first_order: Vec::new(),
                    });
                    self.open_atomic = Some(self.atomics.len() - 1);
                }
                self.exec_block(body, env);
                if fresh {
                    self.open_atomic = None;
                }
            }
        }
    }
}

/// Runs the abstract interpreter over `kernel` with `tid` drawn from the
/// given interval and `nthreads()` equal to `nthreads`.
///
/// Pass `tid = [0, nthreads)` for a symbolic, all-threads view (lint), or
/// an exact `tid` for a per-thread view (DPOR pruning).
pub fn kernel_footprint(kernel: &Kernel, tid: Interval, nthreads: u32) -> KernelFootprint {
    let mut a = Analyzer {
        kernel,
        tid,
        nthreads,
        whole: vec![ParamFootprint::default(); kernel.params.len()],
        atomics: Vec::new(),
        open_atomic: None,
    };
    let mut env: Env = vec![Interval::exact(0); kernel.n_slots];
    a.exec_block(&kernel.body, &mut env);
    KernelFootprint { params: a.whole, atomics: a.atomics }
}

/// Per-thread whole-kernel footprint: everything thread `tid` (of
/// `nthreads`) may read or write in each array parameter.
pub fn thread_footprint(kernel: &Kernel, tid: u32, nthreads: u32) -> Vec<ParamFootprint> {
    kernel_footprint(kernel, Interval::exact(tid), nthreads).params
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn kernel(src: &str) -> crate::ast::Program {
        compile(src).expect("fixture compiles")
    }

    fn only(p: &crate::ast::Program) -> &Kernel {
        &p.kernels[0]
    }

    #[test]
    fn striped_footprints_are_disjoint_per_thread() {
        let p = kernel(
            "kernel stripes(a: array) {
                 let base = tid() * 2;
                 atomic {
                     a[base] = a[base] + 1;
                     a[base + 1] = a[base + 1] + 1;
                 }
             }",
        );
        let f0 = thread_footprint(only(&p), 0, 4);
        let f1 = thread_footprint(only(&p), 1, 4);
        assert_eq!(f0[0].touched(), Some(Interval::new(0, 1)));
        assert_eq!(f1[0].touched(), Some(Interval::new(2, 3)));
        assert!(!f0[0].conflicts(&f1[0]));
        assert!(f0[0].conflicts(&f0[0]));
    }

    #[test]
    fn modulo_bounds_symbolic_tid() {
        let p = kernel(
            "kernel vote(tally: array) {
                 let v = tid() % 8;
                 atomic { tally[v] = tally[v] + 1; }
             }",
        );
        let f = kernel_footprint(only(&p), Interval::new(0, 255), 256);
        assert_eq!(f.params[0].read, Some(Interval::new(0, 7)));
        assert_eq!(f.params[0].write, Some(Interval::new(0, 7)));
        assert_eq!(f.atomics.len(), 1);
        assert_eq!(f.atomics[0].first_order, vec![0]);
    }

    #[test]
    fn while_loop_widens_and_terminates() {
        let p = kernel(
            "kernel scan(a: array) {
                 let i = 0;
                 while i < 100 {
                     a[i] = 0;
                     i = i + 1;
                 }
             }",
        );
        let f = kernel_footprint(only(&p), Interval::exact(0), 1);
        // The hull must cover every written index; widening may take it
        // to ⊤, which is sound.
        let w = f.params[0].write.expect("writes recorded");
        assert_eq!(w.lo, 0);
        assert!(w.hi >= 99);
    }

    #[test]
    fn declared_len_clamps_hull() {
        let p = kernel(
            "kernel wild(a: array[16]) {
                 let i = rand(1000);
                 while i { i = i - 1; }
                 a[i % 16] = 1;
             }",
        );
        let f = kernel_footprint(only(&p), Interval::exact(0), 1);
        let w = f.params[0].write.unwrap();
        assert!(w.hi <= 15, "clamped to the declared length, got {w}");
    }

    #[test]
    fn branches_join() {
        let p = kernel(
            "kernel pick(a: array) {
                 let i = 0;
                 if tid() % 2 { i = 10; } else { i = 3; }
                 a[i] = 1;
             }",
        );
        let f = kernel_footprint(only(&p), Interval::new(0, 31), 32);
        assert_eq!(f.params[0].write, Some(Interval::new(3, 10)));
    }

    #[test]
    fn first_access_order_recorded_per_atomic() {
        let p = kernel(
            "kernel two(a: array, b: array) {
                 atomic { a[0] = b[0]; }
                 atomic { b[1] = a[1]; }
             }",
        );
        let f = kernel_footprint(only(&p), Interval::new(0, 1), 2);
        assert_eq!(f.atomics.len(), 2);
        // Block 1 reads b[0] first (RHS evaluates before the store).
        assert_eq!(f.atomics[0].first_order, vec![1, 0]);
        assert_eq!(f.atomics[1].first_order, vec![0, 1]);
    }

    #[test]
    fn interval_arithmetic_is_sound_on_wrap() {
        let top = Interval::TOP;
        assert!(Interval::exact(u32::MAX).add(Interval::exact(1)).is_top());
        assert_eq!(Interval::exact(5).sub(Interval::exact(2)), Interval::exact(3));
        assert!(Interval::exact(1).sub(Interval::exact(2)).is_top());
        assert_eq!(Interval::new(0, 7).rem(Interval::exact(4)), Interval::new(0, 3));
        assert_eq!(top.rem(Interval::exact(8)), Interval::new(0, 7));
        assert_eq!(Interval::exact(3).mul(Interval::exact(4)), Interval::exact(12));
    }

    /// The interpreter's shifts are `wrapping_shl`/`wrapping_shr` (shift
    /// amount taken modulo 32), so a shift interval that reaches 32
    /// admits an *effective shift of zero*. The abstract operators must
    /// cover that case — `[9,9] >> [1,33]` must still contain 9.
    #[test]
    fn shift_intervals_crossing_32_stay_sound() {
        let v = Interval::exact(9);
        let s = Interval::new(1, 33);
        let shr = v.shr(s);
        for k in [1u32, 31, 32, 33] {
            let concrete = 9u32.wrapping_shr(k);
            assert!(
                shr.lo <= concrete && concrete <= shr.hi,
                "9 >> {k} = {concrete} escaped hull {shr}"
            );
        }
        // shl with a crossing interval likewise admits shift 0.
        assert!(v.shl(s).overlaps(Interval::exact(9)));
        // Entirely-below-32 shifts stay precise in both directions.
        assert_eq!(Interval::new(8, 16).shr(Interval::new(1, 2)), Interval::new(2, 8));
        assert_eq!(Interval::new(1, 2).shl(Interval::new(2, 3)), Interval::new(4, 16));
    }

    /// End-to-end regression for the mod-32 shift: a kernel whose index
    /// shifts by `1 + rand(33)` can execute an effective shift of 0
    /// (k = 32), so thread 9's hull must contain index 9. The previous
    /// `shr` clamped the shift to 31 and reported `[0, 4]`.
    #[test]
    fn kernel_footprint_covers_mod32_shift() {
        let p = kernel(
            "kernel s(a: array[16]) {
                 let k = 1 + rand(33);
                 a[(tid() >> k) % 16] = 1;
             }",
        );
        let f = thread_footprint(only(&p), 9, 16);
        let w = f[0].write.expect("write recorded");
        assert!(w.lo <= 9 && 9 <= w.hi, "index 9 escaped hull {w}");
    }

    /// Index wrap-around below zero: `a[i - 1]` with `i = 0` executes at
    /// u32::MAX under wrapping semantics, so without a declared length
    /// the hull must go to ⊤ (and with one, the clamp keeps it in range).
    #[test]
    fn underflow_index_widens_to_top() {
        let p = kernel("kernel u(a: array) { let i = 0; a[i - 1] = 1; }");
        let f = kernel_footprint(only(&p), Interval::exact(0), 1);
        assert!(f.params[0].write.unwrap().is_top());
        let clamped = kernel("kernel u(a: array[8]) { let i = 0; a[i - 1] = 1; }");
        let w = kernel_footprint(only(&clamped), Interval::exact(0), 1).params[0].write.unwrap();
        assert!(w.hi <= 7, "declared length must clamp the wrapped index, got {w}");
    }

    /// Zero-trip loops: the body never executes, but this is a *may*
    /// analysis — recording the body's accesses is sound (a superset) and
    /// the fixpoint must still terminate immediately.
    #[test]
    fn zero_trip_loops_terminate() {
        let p = kernel(
            "kernel z(a: array) {
                 let i = 10;
                 while i < 10 { a[i] = 1; i = i + 1; }
                 a[0] = 2;
             }",
        );
        let f = kernel_footprint(only(&p), Interval::exact(0), 1);
        let w = f.params[0].write.expect("unconditional store recorded");
        assert!(w.lo == 0, "a[0] must be in the hull");
    }

    /// Negative stride (descending induction): the hull must cover every
    /// index the countdown touches, including the final one.
    #[test]
    fn descending_loop_covers_all_indices() {
        let p = kernel(
            "kernel d(a: array) {
                 let i = 7;
                 while i > 0 { a[i] = 1; i = i - 1; }
                 a[i] = 2;
             }",
        );
        let f = kernel_footprint(only(&p), Interval::exact(0), 1);
        let w = f.params[0].write.expect("writes recorded");
        assert!(w.lo == 0 && w.hi >= 7, "countdown hull {w} must cover [0,7]");
    }
}
