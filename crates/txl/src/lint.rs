//! tm-lint: static race/deadlock analysis for TXL kernels.
//!
//! The GPU-STM paper motivates its design with a catalogue of hazards that
//! manual synchronisation on SIMT hardware invites: weakly-isolated
//! non-transactional accesses racing with transactions (Section 3.2.1),
//! lock acquisitions that deadlock a lock-stepped warp unless globally
//! sorted (Sections 2.2, 3.1), and transactions whose footprint outgrows
//! the fixed ownership table. This pass walks the checked AST and reports
//! each hazard as a span-carrying [`Diagnostic`] so the error points at
//! real source bytes.
//!
//! Rules (stable IDs, used by golden files and fixtures):
//!
//! | ID    | Rule | Hazard |
//! |-------|------|--------|
//! | TL001 | [`Rule::NonAtomicSharedAccess`] | weak-isolation race |
//! | TL002 | [`Rule::UnsortedLockAcquisition`] | SIMT deadlock precondition |
//! | TL003 | [`Rule::UnboundedWriteSet`] | ownership-table overflow |
//! | TL004 | [`Rule::DivergentAtomic`] | transaction under divergent mask |
//! | TL005 | [`Rule::ConflictingFootprintOrder`] | overlapping footprints, inverted order |
//! | TL008 | [`Rule::UnwakeableRetry`] | `retry` with an empty read set |
//!
//! The static verdicts are cross-checked against the simulator's dynamic
//! happens-before race detector (`gpu_sim::race`) by the fixture and
//! property tests: every executed weak-isolation race must be statically
//! flagged.

use crate::ast::{Expr, Kernel, Program, Stmt};
use crate::error::TxlError;
use crate::token::Span;
use std::collections::BTreeSet;
use std::fmt;

/// A lint rule. Each rule has a stable ID (`TLnnn`), a short title, and
/// the paper section that motivates it.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// TL001: an array is accessed both inside an `atomic` block and
    /// outside any `atomic` block in the same kernel. Under weak isolation
    /// the non-transactional access is invisible to the STM's conflict
    /// detection and races with committed transactional state.
    NonAtomicSharedAccess,
    /// TL002: two consecutive spin-wait lock acquisitions whose lock
    /// indices are not provably sorted. On SIMT hardware, unsorted
    /// multi-lock acquisition is the livelock/deadlock precondition the
    /// paper's encounter-time lock sorting exists to eliminate.
    UnsortedLockAcquisition,
    /// TL003: a transaction whose static write-set bound is unbounded (a
    /// loop containing stores) or exceeds the configured ownership-table
    /// capacity, so commit-time lock acquisition can thrash or overflow.
    UnboundedWriteSet,
    /// TL004: an `atomic` block nested under a branch whose condition
    /// depends on `tid()` or `rand()`. The transaction then executes under
    /// a divergent mask, serialising retries and inviting intra-warp
    /// conflict livelock.
    DivergentAtomic,
    /// TL005: two `atomic` blocks whose abstract footprints
    /// ([`crate::footprint`]) overlap on two or more arrays, but which
    /// first touch those arrays in different orders. Encounter-time lock
    /// acquisition then takes the overlapping stripes in inverted order —
    /// the lock-order-inversion shape that deadlocks a lock-stepped warp
    /// unless the STM sorts its lock-log.
    ConflictingFootprintOrder,
    /// TL006: a statically-hot stripe — the block's weighted degree in
    /// the [`crate::cost`] conflict graph (sum of incident may-conflict
    /// rates over thread pairs) is at or above the configured threshold,
    /// so most concurrent executions contend for the same stripes and
    /// abort-retry cycles dominate. Off unless
    /// [`LintConfig::hot_degree`] is set.
    StaticallyHotStripe,
    /// TL007: a provably read-only transaction running on the ordinary
    /// write path — it still pays per-access write-set buffering and
    /// commit machinery for a write-set that is statically empty, and
    /// should be routed to a read-only fast path. Off unless
    /// [`LintConfig::flag_read_only`] is set.
    ReadOnlyWriteCost,
    /// TL008: a `retry` reachable without any transactional array read
    /// before it, so its read set — the wake condition's watch set — is
    /// statically empty. Nothing another commit writes can change the
    /// lane's decision: under parking it is unwakeable (the `Blocking`
    /// runtime falls back to abort-respin) and under abort-respin it
    /// spins until the watchdog fires.
    UnwakeableRetry,
}

impl Rule {
    /// Stable diagnostic ID, e.g. `"TL001"`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NonAtomicSharedAccess => "TL001",
            Rule::UnsortedLockAcquisition => "TL002",
            Rule::UnboundedWriteSet => "TL003",
            Rule::DivergentAtomic => "TL004",
            Rule::ConflictingFootprintOrder => "TL005",
            Rule::StaticallyHotStripe => "TL006",
            Rule::ReadOnlyWriteCost => "TL007",
            Rule::UnwakeableRetry => "TL008",
        }
    }

    /// Short human-readable title.
    pub fn title(self) -> &'static str {
        match self {
            Rule::NonAtomicSharedAccess => "non-atomic access to transactionally shared array",
            Rule::UnsortedLockAcquisition => "lock acquisition order not provably sorted",
            Rule::UnboundedWriteSet => "transaction write-set not bounded by table capacity",
            Rule::DivergentAtomic => "atomic block under divergent control flow",
            Rule::ConflictingFootprintOrder => {
                "overlapping transactional footprints acquired in different orders"
            }
            Rule::StaticallyHotStripe => {
                "statically-hot stripe: conflict-graph degree above threshold"
            }
            Rule::ReadOnlyWriteCost => "read-only transaction paying write-set cost",
            Rule::UnwakeableRetry => "retry with a statically empty read set (unwakeable)",
        }
    }

    /// The GPU-STM paper section that motivates the rule.
    pub fn paper_ref(self) -> &'static str {
        match self {
            Rule::NonAtomicSharedAccess => "Section 3.2.1 (weak isolation)",
            Rule::UnsortedLockAcquisition => "Sections 2.2, 3.1 (SIMT deadlock, lock sorting)",
            Rule::UnboundedWriteSet => "Section 3.1 (ownership table)",
            Rule::DivergentAtomic => "Section 2.2 (SIMT divergence)",
            Rule::ConflictingFootprintOrder => "Sections 2.2, 3.1 (lock-order inversion)",
            Rule::StaticallyHotStripe => "Sections 2.2, 4.2 (conflicts cap concurrency)",
            Rule::ReadOnlyWriteCost => "Section 3.1 (lazy versioning write-sets)",
            Rule::UnwakeableRetry => "Section 3.2.2 (validated read sets as watch sets)",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// All rules, in ID order.
pub const RULES: [Rule; 8] = [
    Rule::NonAtomicSharedAccess,
    Rule::UnsortedLockAcquisition,
    Rule::UnboundedWriteSet,
    Rule::DivergentAtomic,
    Rule::ConflictingFootprintOrder,
    Rule::StaticallyHotStripe,
    Rule::ReadOnlyWriteCost,
    Rule::UnwakeableRetry,
];

/// Configuration for the lint pass.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    /// Ownership-table capacity (the STM's lock-table size). When set,
    /// TL003 additionally flags transactions whose finite write-set bound
    /// exceeds it; unbounded write-sets are always flagged.
    pub write_set_capacity: Option<u32>,
    /// TL006 threshold on a block's weighted conflict-graph degree
    /// ([`crate::cost::ConflictGraph::weighted_degree`]). `None`
    /// disables TL006 (the default — contention is a performance
    /// concern, not a correctness bug, so it is opt-in; `txl analyze`
    /// turns it on).
    pub hot_degree: Option<f64>,
    /// Enables TL007 (read-only transaction on the write path). Off by
    /// default for the same reason; `txl analyze` turns it on.
    pub flag_read_only: bool,
}

/// One lint finding, anchored to source bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The violated rule.
    pub rule: Rule,
    /// Kernel the finding is in.
    pub kernel: String,
    /// 1-based source line of the finding.
    pub line: u32,
    /// Source bytes of the offending construct.
    pub span: Span,
    /// Human-readable explanation.
    pub message: String,
    /// The repair [`crate::fix`] proposes for this finding, when one is
    /// known. Populated by [`lint_source_with_fixes`]; plain
    /// [`lint_program`]/[`lint_source`] leave it `None`.
    pub suggested_fix: Option<crate::patch::Patch>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}:{} {}] {}",
            self.rule.id(),
            self.kernel,
            self.line,
            self.span,
            self.message
        )
    }
}

/// Lints a checked program (slots resolved by
/// [`crate::check::check_program`]); see [`crate::compile`].
///
/// Diagnostics are sorted by kernel order, then source position, then
/// rule ID, so output is deterministic and golden-file friendly.
pub fn lint_program(program: &Program, cfg: &LintConfig) -> Vec<Diagnostic> {
    // TL006/TL007 need the whole-program cost profile (the conflict
    // graph spans kernels); compute it once when either rule is on.
    let profile = (cfg.hot_degree.is_some() || cfg.flag_read_only).then(|| {
        crate::cost::analyze_program(
            program,
            &crate::cost::CostConfig {
                write_set_capacity: cfg.write_set_capacity,
                ..crate::cost::CostConfig::default()
            },
        )
    });
    let mut out = Vec::new();
    for (ki, kernel) in program.kernels.iter().enumerate() {
        let mut diags = Vec::new();
        non_atomic_shared(kernel, &mut diags);
        unsorted_locks(kernel, &mut diags);
        unbounded_write_set(kernel, cfg, &mut diags);
        divergent_atomic(kernel, &mut diags);
        conflicting_footprint_order(kernel, &mut diags);
        unwakeable_retry(kernel, &mut diags);
        if let Some(profile) = &profile {
            contention_rules(kernel, profile, cfg, &mut diags);
        }
        diags.sort_by_key(|d| (d.span.start, d.rule));
        out.extend(diags.into_iter().map(|d| (ki, d)));
    }
    out.into_iter().map(|(_, d)| d).collect()
}

/// TL006 + TL007, driven by the [`crate::cost`] static profile.
fn contention_rules(
    kernel: &Kernel,
    profile: &crate::cost::StaticProfile,
    cfg: &LintConfig,
    out: &mut Vec<Diagnostic>,
) {
    for tx in profile.tx.iter().filter(|t| t.kernel == kernel.name) {
        if let Some(threshold) = cfg.hot_degree {
            if tx.conflict_degree >= threshold {
                let hot: Vec<&str> =
                    tx.arrays.iter().filter(|a| a.density > 1.0).map(|a| a.name.as_str()).collect();
                let arrays = if hot.is_empty() { "its arrays".to_string() } else { hot.join(", ") };
                out.push(diag(
                    kernel,
                    Rule::StaticallyHotStripe,
                    tx.span,
                    format!(
                        "atomic block contends on statically-hot stripes of {arrays}: weighted \
                         conflict degree {:.2} >= {threshold:.2} across {} thread(s); expect \
                         abort-retry serialization",
                        tx.conflict_degree, profile.threads
                    ),
                ));
            }
        }
        if cfg.flag_read_only && tx.read_only {
            out.push(diag(
                kernel,
                Rule::ReadOnlyWriteCost,
                tx.span,
                format!(
                    "atomic block is provably read-only ({} read(s), write-set statically \
                     empty) but runs on the write path; route it to a read-only fast path \
                     that skips write-set buffering and commit locking",
                    tx.read_ops
                ),
            ));
        }
    }
}

/// Compiles `src` and lints it: the one-call front door used by the
/// `txl lint` CLI.
///
/// # Errors
///
/// Any [`TxlError`] from lexing, parsing or semantic checking.
pub fn lint_source(src: &str, cfg: &LintConfig) -> Result<Vec<Diagnostic>, TxlError> {
    let program = crate::compile(src)?;
    Ok(lint_program(&program, cfg))
}

/// Like [`lint_source`], but asks the repair engine ([`crate::fix`]) to
/// plan a patch for each finding and carries it in
/// [`Diagnostic::suggested_fix`].
///
/// # Errors
///
/// Any [`TxlError`] from lexing, parsing or semantic checking.
pub fn lint_source_with_fixes(src: &str, cfg: &LintConfig) -> Result<Vec<Diagnostic>, TxlError> {
    let program = crate::compile(src)?;
    let mut diags = lint_program(&program, cfg);
    for d in &mut diags {
        d.suggested_fix = crate::fix::plan(src, &program, d, cfg);
    }
    Ok(diags)
}

fn diag(kernel: &Kernel, rule: Rule, span: Span, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        kernel: kernel.name.clone(),
        line: span.line,
        span,
        message,
        suggested_fix: None,
    }
}

/// Collects every array access in an expression as `(param, span)`.
pub(crate) fn expr_accesses(e: &Expr, out: &mut Vec<(usize, Span)>) {
    match e {
        Expr::Int(_) | Expr::Tid | Expr::NThreads | Expr::Var { .. } => {}
        Expr::Index { param, index, span, .. } => {
            out.push((*param, *span));
            expr_accesses(index, out);
        }
        Expr::Bin { lhs, rhs, .. } => {
            expr_accesses(lhs, out);
            expr_accesses(rhs, out);
        }
        Expr::Not(e) | Expr::Rand(e) => expr_accesses(e, out),
    }
}

/// Collects every array access in a block as `(param, span)`, including
/// store targets, conditions, and nested blocks.
pub(crate) fn block_accesses(stmts: &[Stmt], out: &mut Vec<(usize, Span)>) {
    for s in stmts {
        match s {
            Stmt::Let { init, .. } | Stmt::Assign { value: init, .. } => expr_accesses(init, out),
            Stmt::Store { param, index, value, span, .. } => {
                out.push((*param, *span));
                expr_accesses(index, out);
                expr_accesses(value, out);
            }
            Stmt::If { cond, then_blk, else_blk, .. } => {
                expr_accesses(cond, out);
                block_accesses(then_blk, out);
                block_accesses(else_blk, out);
            }
            Stmt::While { cond, body, .. } => {
                expr_accesses(cond, out);
                block_accesses(body, out);
            }
            Stmt::Atomic { body, .. } => block_accesses(body, out),
            Stmt::Retry { .. } => {}
        }
    }
}

// ---------------------------------------------------------------- TL001

fn non_atomic_shared(kernel: &Kernel, out: &mut Vec<Diagnostic>) {
    // Pass 1: arrays touched inside any atomic block.
    let mut tx_arrays = BTreeSet::new();
    fn collect_tx(stmts: &[Stmt], out: &mut BTreeSet<usize>) {
        for s in stmts {
            match s {
                Stmt::Atomic { body, .. } => {
                    let mut acc = Vec::new();
                    block_accesses(body, &mut acc);
                    out.extend(acc.into_iter().map(|(p, _)| p));
                }
                Stmt::If { then_blk, else_blk, .. } => {
                    collect_tx(then_blk, out);
                    collect_tx(else_blk, out);
                }
                Stmt::While { body, .. } => collect_tx(body, out),
                _ => {}
            }
        }
    }
    collect_tx(&kernel.body, &mut tx_arrays);
    if tx_arrays.is_empty() {
        return;
    }

    // Pass 2: accesses to those arrays outside every atomic block.
    fn walk(
        stmts: &[Stmt],
        tx_arrays: &BTreeSet<usize>,
        kernel: &Kernel,
        out: &mut Vec<Diagnostic>,
    ) {
        for s in stmts {
            let mut acc = Vec::new();
            match s {
                Stmt::Atomic { .. } | Stmt::Retry { .. } => continue,
                Stmt::Let { init, .. } | Stmt::Assign { value: init, .. } => {
                    expr_accesses(init, &mut acc);
                }
                Stmt::Store { param, index, value, span, .. } => {
                    acc.push((*param, *span));
                    expr_accesses(index, &mut acc);
                    expr_accesses(value, &mut acc);
                }
                Stmt::If { cond, then_blk, else_blk, .. } => {
                    expr_accesses(cond, &mut acc);
                    walk(then_blk, tx_arrays, kernel, out);
                    walk(else_blk, tx_arrays, kernel, out);
                }
                Stmt::While { cond, body, .. } => {
                    expr_accesses(cond, &mut acc);
                    walk(body, tx_arrays, kernel, out);
                }
            }
            for (p, span) in acc {
                if tx_arrays.contains(&p) {
                    let name = &kernel.params[p].name;
                    out.push(diag(
                        kernel,
                        Rule::NonAtomicSharedAccess,
                        span,
                        format!(
                            "array `{name}` is accessed inside an atomic block elsewhere in \
                             this kernel; this non-transactional access is invisible to the \
                             STM and can race with committed transactions (weak isolation)"
                        ),
                    ));
                }
            }
        }
    }
    walk(&kernel.body, &tx_arrays, kernel, out);
}

// ---------------------------------------------------------------- TL002

/// A spin-wait acquisition site: `while A[e] { .. }` where the body
/// performs no stores (a pure spin).
pub(crate) struct Spin<'a> {
    pub(crate) param: usize,
    pub(crate) index: &'a Expr,
    pub(crate) span: Span,
}

pub(crate) fn as_spin(s: &Stmt) -> Option<Spin<'_>> {
    let Stmt::While { cond, body, span } = s else { return None };
    // The condition must read exactly one array element (the lock word).
    let mut acc = Vec::new();
    expr_accesses(cond, &mut acc);
    let [(param, _)] = acc[..] else { return None };
    // A pure spin never stores (otherwise it is a worklist loop, not a
    // lock wait).
    fn has_store(stmts: &[Stmt]) -> bool {
        stmts.iter().any(|s| match s {
            Stmt::Store { .. } => true,
            Stmt::If { then_blk, else_blk, .. } => has_store(then_blk) || has_store(else_blk),
            Stmt::While { body, .. } | Stmt::Atomic { body, .. } => has_store(body),
            _ => false,
        })
    }
    if has_store(body) {
        return None;
    }
    // Find the single index expression in the condition.
    fn find_index(e: &Expr) -> Option<&Expr> {
        match e {
            Expr::Index { index, .. } => Some(index),
            Expr::Bin { lhs, rhs, .. } => find_index(lhs).or_else(|| find_index(rhs)),
            Expr::Not(e) | Expr::Rand(e) => find_index(e),
            _ => None,
        }
    }
    Some(Spin { param, index: find_index(cond)?, span: *span })
}

/// Structural expression equality, ignoring spans.
pub(crate) fn expr_eq(a: &Expr, b: &Expr) -> bool {
    match (a, b) {
        (Expr::Int(x), Expr::Int(y)) => x == y,
        (Expr::Tid, Expr::Tid) | (Expr::NThreads, Expr::NThreads) => true,
        (Expr::Var { slot: x, .. }, Expr::Var { slot: y, .. }) => x == y,
        (Expr::Index { param: p, index: i, .. }, Expr::Index { param: q, index: j, .. }) => {
            p == q && expr_eq(i, j)
        }
        (Expr::Bin { op: o1, lhs: l1, rhs: r1 }, Expr::Bin { op: o2, lhs: l2, rhs: r2 }) => {
            o1 == o2 && expr_eq(l1, l2) && expr_eq(r1, r2)
        }
        (Expr::Not(x), Expr::Not(y)) | (Expr::Rand(x), Expr::Rand(y)) => expr_eq(x, y),
        _ => false,
    }
}

/// Is `second` provably `>= first`? Conservative: literal comparison,
/// syntactic equality, or `second == first + literal`.
fn provably_ordered(first: &Expr, second: &Expr) -> bool {
    if let (Expr::Int(a), Expr::Int(b)) = (first, second) {
        return a <= b;
    }
    if expr_eq(first, second) {
        return true;
    }
    if let Expr::Bin { op: crate::ast::BinOp::Add, lhs, rhs } = second {
        if expr_eq(first, lhs) && matches!(**rhs, Expr::Int(_)) {
            return true;
        }
        if expr_eq(first, rhs) && matches!(**lhs, Expr::Int(_)) {
            return true;
        }
    }
    false
}

fn unsorted_locks(kernel: &Kernel, out: &mut Vec<Diagnostic>) {
    fn walk(stmts: &[Stmt], kernel: &Kernel, out: &mut Vec<Diagnostic>) {
        // Spin sites in this straight-line block, in statement order.
        let mut spins: Vec<Spin<'_>> = Vec::new();
        for s in stmts {
            if let Some(spin) = as_spin(s) {
                if let Some(prev) = spins.last() {
                    if prev.param == spin.param && !provably_ordered(prev.index, spin.index) {
                        let name = &kernel.params[spin.param].name;
                        out.push(diag(
                            kernel,
                            Rule::UnsortedLockAcquisition,
                            spin.span,
                            format!(
                                "second spin-wait on `{name}` acquires a lock whose index is \
                                 not provably >= the previous acquisition; unsorted multi-lock \
                                 acquisition deadlocks lock-stepped warps (sort addresses, or \
                                 use `atomic`)"
                            ),
                        ));
                    }
                }
                spins.push(spin);
                continue;
            }
            // Control flow resets the straight-line acquisition sequence;
            // recurse into nested blocks.
            match s {
                Stmt::If { then_blk, else_blk, .. } => {
                    spins.clear();
                    walk(then_blk, kernel, out);
                    walk(else_blk, kernel, out);
                }
                Stmt::While { body, .. } | Stmt::Atomic { body, .. } => {
                    spins.clear();
                    walk(body, kernel, out);
                }
                _ => {} // straight-line: Let/Assign/Store keep the sequence
            }
        }
    }
    walk(&kernel.body, kernel, out);
}

// ---------------------------------------------------------------- TL003

/// Static upper bound on the number of stores a block executes; `None`
/// means unbounded (a loop containing stores).
pub(crate) fn store_bound(stmts: &[Stmt]) -> Option<u32> {
    let mut total: u32 = 0;
    for s in stmts {
        let b = match s {
            Stmt::Store { .. } => Some(1),
            Stmt::If { then_blk, else_blk, .. } => {
                Some(store_bound(then_blk)?.max(store_bound(else_blk)?))
            }
            Stmt::While { body, .. } => {
                if store_bound(body) == Some(0) {
                    Some(0)
                } else {
                    None // loop may iterate arbitrarily: stores unbounded
                }
            }
            Stmt::Atomic { body, .. } => store_bound(body),
            Stmt::Let { .. } | Stmt::Assign { .. } | Stmt::Retry { .. } => Some(0),
        };
        total = total.saturating_add(b?);
    }
    Some(total)
}

fn unbounded_write_set(kernel: &Kernel, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    fn walk(stmts: &[Stmt], kernel: &Kernel, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
        for s in stmts {
            match s {
                Stmt::Atomic { body, span, .. } => match store_bound(body) {
                    None => out.push(diag(
                        kernel,
                        Rule::UnboundedWriteSet,
                        *span,
                        "transaction contains a loop with stores, so its write-set has no \
                         static bound; it can overflow the ownership table and livelock \
                         commit"
                            .to_string(),
                    )),
                    Some(b) => {
                        if let Some(cap) = cfg.write_set_capacity {
                            if b > cap {
                                out.push(diag(
                                    kernel,
                                    Rule::UnboundedWriteSet,
                                    *span,
                                    format!(
                                        "transaction may perform up to {b} stores but the \
                                         ownership table holds {cap} entries"
                                    ),
                                ));
                            }
                        }
                    }
                },
                Stmt::If { then_blk, else_blk, .. } => {
                    walk(then_blk, kernel, cfg, out);
                    walk(else_blk, kernel, cfg, out);
                }
                Stmt::While { body, .. } => walk(body, kernel, cfg, out),
                _ => {}
            }
        }
    }
    walk(&kernel.body, kernel, cfg, out);
}

// ---------------------------------------------------------------- TL004

/// Is the expression's value thread-dependent, given the tainted slots?
fn expr_tainted(e: &Expr, tainted: &BTreeSet<usize>) -> bool {
    match e {
        Expr::Int(_) | Expr::NThreads => false,
        Expr::Tid | Expr::Rand(_) => true,
        Expr::Var { slot, .. } => tainted.contains(slot),
        // A load at a thread-dependent index reads a thread-dependent value.
        Expr::Index { index, .. } => expr_tainted(index, tainted),
        Expr::Bin { lhs, rhs, .. } => expr_tainted(lhs, tainted) || expr_tainted(rhs, tainted),
        Expr::Not(e) => expr_tainted(e, tainted),
    }
}

/// Fixpoint taint of local slots from `tid()`/`rand()` sources.
fn taint_slots(kernel: &Kernel) -> BTreeSet<usize> {
    fn pass(stmts: &[Stmt], tainted: &mut BTreeSet<usize>, changed: &mut bool) {
        for s in stmts {
            match s {
                Stmt::Let { slot, init: v, .. } | Stmt::Assign { slot, value: v, .. } => {
                    if expr_tainted(v, tainted) && tainted.insert(*slot) {
                        *changed = true;
                    }
                }
                Stmt::Store { .. } | Stmt::Retry { .. } => {}
                Stmt::If { then_blk, else_blk, .. } => {
                    pass(then_blk, tainted, changed);
                    pass(else_blk, tainted, changed);
                }
                Stmt::While { body, .. } | Stmt::Atomic { body, .. } => {
                    pass(body, tainted, changed);
                }
            }
        }
    }
    let mut tainted = BTreeSet::new();
    loop {
        let mut changed = false;
        pass(&kernel.body, &mut tainted, &mut changed);
        if !changed {
            return tainted;
        }
    }
}

fn divergent_atomic(kernel: &Kernel, out: &mut Vec<Diagnostic>) {
    let tainted = taint_slots(kernel);
    fn walk(
        stmts: &[Stmt],
        divergent: bool,
        tainted: &BTreeSet<usize>,
        kernel: &Kernel,
        out: &mut Vec<Diagnostic>,
    ) {
        for s in stmts {
            match s {
                Stmt::Atomic { body, span, .. } => {
                    if divergent {
                        out.push(diag(
                            kernel,
                            Rule::DivergentAtomic,
                            *span,
                            "atomic block is guarded by a thread-dependent condition; the \
                             transaction runs under a divergent mask, serialising the warp \
                             and inviting intra-warp retry livelock"
                                .to_string(),
                        ));
                    }
                    walk(body, divergent, tainted, kernel, out);
                }
                Stmt::If { cond, then_blk, else_blk, .. } => {
                    let div = divergent || expr_tainted(cond, tainted);
                    walk(then_blk, div, tainted, kernel, out);
                    walk(else_blk, div, tainted, kernel, out);
                }
                Stmt::While { cond, body, .. } => {
                    let div = divergent || expr_tainted(cond, tainted);
                    walk(body, div, tainted, kernel, out);
                }
                _ => {}
            }
        }
    }
    walk(&kernel.body, false, &tainted, kernel, out);
}

// ---------------------------------------------------------------- TL005

/// Arrays on which footprints `a` and `b` may conflict *and* whose
/// first-touch orders are inverted between the two blocks. `None` when
/// the pair shares fewer than two arrays or the orders agree — i.e. the
/// pair is not a TL005 hazard. Shared with [`crate::fix`], which uses it
/// both to locate a diagnostic's partner block and to prove a candidate
/// reorder actually discharges the inversion.
pub(crate) fn inverted_shared(
    a: &crate::footprint::AtomicFootprint,
    b: &crate::footprint::AtomicFootprint,
    nparams: usize,
) -> Option<Vec<usize>> {
    let shared: Vec<usize> =
        (0..nparams).filter(|&p| a.params[p].conflicts(&b.params[p])).collect();
    if shared.len() < 2 {
        return None;
    }
    let pos = |order: &[usize], p: usize| order.iter().position(|&x| x == p);
    let inverted = shared.iter().enumerate().any(|(x, &p)| {
        shared.iter().skip(x + 1).any(|&q| match (pos(&a.first_order, p), pos(&a.first_order, q)) {
            (Some(ap), Some(aq)) => match (pos(&b.first_order, p), pos(&b.first_order, q)) {
                (Some(bp), Some(bq)) => (ap < aq) != (bp < bq),
                _ => false,
            },
            _ => false,
        })
    });
    inverted.then_some(shared)
}

fn conflicting_footprint_order(kernel: &Kernel, out: &mut Vec<Diagnostic>) {
    // Symbolic view: tid unconstrained, so the footprints cover every
    // thread. Over-approximation only ever *adds* overlap, which is the
    // sound direction for a hazard lint.
    let fps = crate::footprint::kernel_footprint(kernel, crate::footprint::Interval::TOP, u32::MAX);
    for i in 0..fps.atomics.len() {
        for j in i + 1..fps.atomics.len() {
            let (a, b) = (&fps.atomics[i], &fps.atomics[j]);
            if let Some(shared) = inverted_shared(a, b, kernel.params.len()) {
                let names: Vec<&str> =
                    shared.iter().map(|&p| kernel.params[p].name.as_str()).collect();
                out.push(diag(
                    kernel,
                    Rule::ConflictingFootprintOrder,
                    b.span,
                    format!(
                        "this atomic block and the one at line {} have statically-overlapping \
                         footprints on arrays {} but first touch them in different orders; \
                         encounter-time lock acquisition in inverted order deadlocks a \
                         lock-stepped warp unless the STM sorts its lock-log",
                        a.span.line,
                        names.iter().map(|n| format!("`{n}`")).collect::<Vec<_>>().join(", "),
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------- TL008

/// Whether evaluating `e` performs at least one array read.
fn expr_has_read(e: &Expr) -> bool {
    match e {
        Expr::Int(_) | Expr::Tid | Expr::NThreads | Expr::Var { .. } => false,
        Expr::Index { .. } => true,
        Expr::Bin { lhs, rhs, .. } => expr_has_read(lhs) || expr_has_read(rhs),
        Expr::Not(e) | Expr::Rand(e) => expr_has_read(e),
    }
}

fn unwakeable_retry(kernel: &Kernel, out: &mut Vec<Diagnostic>) {
    // A parked lane's wake condition is its validated read set: a
    // `retry` reachable with no transactional array read before it on
    // any path has a statically empty watch set — no commit anywhere
    // can change what the lane observed, so it can never be woken.
    // Walks each atomic body tracking "a read may precede this point";
    // branch exits merge with OR (a read on *some* path to a later
    // retry makes it potentially wakeable, so only the definite case
    // is flagged).
    fn walk(stmts: &[Stmt], mut seen: bool, kernel: &Kernel, out: &mut Vec<Diagnostic>) -> bool {
        for s in stmts {
            match s {
                Stmt::Retry { span } => {
                    if !seen {
                        out.push(diag(
                            kernel,
                            Rule::UnwakeableRetry,
                            *span,
                            "`retry` with a statically empty read set: no array read \
                             precedes it in this transaction, so no commit can ever \
                             change its decision — a parked lane would never be woken \
                             and a respinning lane spins until the watchdog fires"
                                .to_string(),
                        ));
                    }
                }
                Stmt::Let { init, .. } | Stmt::Assign { value: init, .. } => {
                    seen |= expr_has_read(init);
                }
                Stmt::Store { index, value, .. } => {
                    seen |= expr_has_read(index) || expr_has_read(value);
                }
                Stmt::If { cond, then_blk, else_blk, .. } => {
                    seen |= expr_has_read(cond);
                    let t = walk(then_blk, seen, kernel, out);
                    let e = walk(else_blk, seen, kernel, out);
                    seen = t | e;
                }
                Stmt::While { cond, body, .. } => {
                    seen |= expr_has_read(cond);
                    seen = walk(body, seen, kernel, out);
                }
                Stmt::Atomic { body, .. } => {
                    seen = walk(body, seen, kernel, out);
                }
            }
        }
        seen
    }
    fn find_atomics(stmts: &[Stmt], kernel: &Kernel, out: &mut Vec<Diagnostic>) {
        for s in stmts {
            match s {
                Stmt::Atomic { body, .. } => {
                    walk(body, false, kernel, out);
                }
                Stmt::If { then_blk, else_blk, .. } => {
                    find_atomics(then_blk, kernel, out);
                    find_atomics(else_blk, kernel, out);
                }
                Stmt::While { body, .. } => find_atomics(body, kernel, out),
                _ => {}
            }
        }
    }
    find_atomics(&kernel.body, kernel, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        lint_source(src, &LintConfig::default()).unwrap()
    }

    fn lint_cap(src: &str, cap: u32) -> Vec<Diagnostic> {
        lint_source(src, &LintConfig { write_set_capacity: Some(cap), ..LintConfig::default() })
            .unwrap()
    }

    #[test]
    fn tl001_flags_non_atomic_access_to_tx_array() {
        let src = "kernel k(a: array) {
            let i = tid();
            atomic { a[0] = a[0] + 1; }
            a[i] = 7;
        }";
        let d = lint(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::NonAtomicSharedAccess);
        assert_eq!(d[0].span.snippet(src), "a[i] = 7;");
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn tl001_reads_count_too_but_disjoint_arrays_do_not() {
        let d = lint(
            "kernel k(a: array, b: array) {
                let x = a[0];
                atomic { a[1] = x; }
                b[0] = x;
            }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::NonAtomicSharedAccess);
        assert!(d[0].message.contains("`a`"));
    }

    #[test]
    fn tl001_clean_when_all_accesses_transactional() {
        let d = lint("kernel k(a: array) { atomic { a[0] = a[1] + 1; } }");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn tl002_flags_unsorted_spin_pair() {
        let src = "kernel k(l: array) {
            let x = tid();
            let y = tid() + 1;
            while l[y] { }
            l[y] = 1;
            while l[x] { }
            l[x] = 1;
        }";
        let d = lint(src);
        let tl002: Vec<_> = d.iter().filter(|d| d.rule == Rule::UnsortedLockAcquisition).collect();
        assert_eq!(tl002.len(), 1, "{d:?}");
        assert_eq!(tl002[0].span.snippet(src), "while l[x] { }");
    }

    #[test]
    fn tl002_sorted_literals_and_offsets_pass() {
        let d = lint(
            "kernel k(l: array) {
                let x = tid();
                while l[x] { } l[x] = 1;
                while l[x + 1] { } l[x + 1] = 1;
                while l[3] { } l[3] = 1;
                while l[7] { } l[7] = 1;
            }",
        );
        // `x+1` vs literal `3` is unprovable — that pair is the only report.
        let tl002: Vec<_> = d.iter().filter(|d| d.rule == Rule::UnsortedLockAcquisition).collect();
        assert_eq!(tl002.len(), 1, "{d:?}");
    }

    #[test]
    fn tl002_ignores_worklist_loops() {
        // A while that stores is a worklist loop, not a spin.
        let d = lint(
            "kernel k(q: array) {
                let i = 0;
                while q[i] { q[i] = 0; i = i + 1; }
                while q[0] { }
            }",
        );
        assert!(d.iter().all(|d| d.rule != Rule::UnsortedLockAcquisition), "{d:?}");
    }

    #[test]
    fn tl003_flags_loop_with_stores_in_atomic() {
        let src = "kernel k(a: array) {
            atomic {
                let i = 0;
                while i < 10 { a[i] = 1; i = i + 1; }
            }
        }";
        let d = lint(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::UnboundedWriteSet);
        assert!(d[0].message.contains("no static bound"));
    }

    #[test]
    fn tl003_capacity_bound_checked_when_configured() {
        let src = "kernel k(a: array) {
            atomic { a[0] = 1; a[1] = 1; a[2] = 1; }
        }";
        assert!(lint(src).is_empty(), "no capacity configured: silent");
        let d = lint_cap(src, 2);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::UnboundedWriteSet);
        assert!(d[0].message.contains("up to 3 stores"), "{}", d[0].message);
        assert!(lint_cap(src, 3).is_empty());
    }

    #[test]
    fn tl003_if_takes_max_branch() {
        let src = "kernel k(a: array) {
            atomic { if a[9] { a[0] = 1; a[1] = 1; } else { a[2] = 1; } }
        }";
        assert!(lint_cap(src, 2).is_empty(), "max branch is 2 stores");
        assert_eq!(lint_cap(src, 1).len(), 1);
    }

    #[test]
    fn tl004_flags_atomic_under_tid_branch() {
        let src = "kernel k(a: array) {
            let i = tid();
            if i < 5 { atomic { a[0] = a[0] + 1; } }
        }";
        let d = lint(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::DivergentAtomic);
        assert_eq!(d[0].span.snippet(src), "atomic { a[0] = a[0] + 1; }");
    }

    #[test]
    fn tl004_taint_flows_through_assignments() {
        let d = lint(
            "kernel k(a: array) {
                let i = rand(4);
                let j = i * 2;
                let c = 0;
                c = j;
                if c { atomic { a[0] = 1; } }
            }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::DivergentAtomic);
    }

    #[test]
    fn tl004_uniform_branch_is_clean() {
        let d = lint(
            "kernel k(a: array) {
                let n = nthreads();
                if n > 32 { atomic { a[0] = a[0] + 1; } }
            }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn diagnostics_are_sorted_and_display_ids() {
        let src = "kernel k(a: array, l: array) {
            let i = tid();
            a[i] = 0;
            if i { atomic { a[0] = a[0] + 1; } }
        }";
        let d = lint(src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].span.start <= d[1].span.start);
        assert!(d[0].to_string().starts_with("TL001 [k:"), "{}", d[0]);
        assert!(d[1].to_string().starts_with("TL004 [k:"), "{}", d[1]);
    }

    #[test]
    fn rule_catalog_is_stable() {
        assert_eq!(
            RULES.map(Rule::id),
            ["TL001", "TL002", "TL003", "TL004", "TL005", "TL006", "TL007", "TL008"]
        );
        for r in RULES {
            assert!(!r.title().is_empty());
            assert!(r.paper_ref().starts_with("Section"), "{}", r.paper_ref());
        }
    }

    #[test]
    fn tl006_flags_hot_counter_only_when_enabled() {
        let src = "kernel bump(c: array) {
            atomic { c[0] = c[0] + 1; }
        }";
        // Silent by default: contention rules are opt-in.
        assert!(lint(src).is_empty());
        let cfg = LintConfig { hot_degree: Some(0.9), ..LintConfig::default() };
        let d = lint_source(src, &cfg).unwrap();
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::StaticallyHotStripe);
        assert!(d[0].message.contains("c"), "{}", d[0]);
    }

    #[test]
    fn tl006_quiet_for_striped_access() {
        // Perfectly striped: each thread owns its own slot, degree 0.
        let src = "kernel own(c: array[1024]) {
            let i = tid();
            atomic { c[i] = c[i] + 1; }
        }";
        let cfg = LintConfig { hot_degree: Some(0.5), ..LintConfig::default() };
        assert!(lint_source(src, &cfg).unwrap().is_empty());
    }

    #[test]
    fn tl007_flags_read_only_tx_only_when_enabled() {
        let src = "kernel sum(a: array[8]) {
            let acc = 0;
            atomic {
                let i = 0;
                while i < 8 { acc = acc + a[i]; i = i + 1; }
            }
        }";
        assert!(lint(src).is_empty());
        let cfg = LintConfig { flag_read_only: true, ..LintConfig::default() };
        let d = lint_source(src, &cfg).unwrap();
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::ReadOnlyWriteCost);
        assert!(d[0].message.contains("read-only"), "{}", d[0]);
    }

    #[test]
    fn tl007_quiet_for_writing_tx() {
        let src = "kernel w(a: array[8]) {
            let i = tid() % 8;
            atomic { a[i] = a[i] + 1; }
        }";
        let cfg = LintConfig { flag_read_only: true, ..LintConfig::default() };
        assert!(lint_source(src, &cfg).unwrap().is_empty());
    }

    #[test]
    fn tl005_flags_inverted_footprint_order() {
        let d = lint(
            "kernel swap(src: array, dst: array) {
                 let i = tid() % 8;
                 atomic {
                     src[i] = src[i] - 1;
                     dst[i] = dst[i] + 1;
                 }
                 atomic {
                     dst[i] = dst[i] - 1;
                     src[i] = src[i] + 1;
                 }
             }",
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::ConflictingFootprintOrder);
        // Anchored on the later block.
        assert!(d[0].message.contains("`src`") && d[0].message.contains("`dst`"), "{}", d[0]);
    }

    #[test]
    fn tl005_quiet_when_orders_agree() {
        let d = lint(
            "kernel swap(src: array, dst: array) {
                 let i = tid() % 8;
                 atomic {
                     src[i] = src[i] - 1;
                     dst[i] = dst[i] + 1;
                 }
                 atomic {
                     src[i] = src[i] + 1;
                     dst[i] = dst[i] - 1;
                 }
             }",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn tl005_quiet_when_footprints_disjoint() {
        // Same inverted order, but the two blocks touch provably disjoint
        // halves of each array: no stripe can be contended.
        let d = lint(
            "kernel split(a: array[16], b: array[16]) {
                 let i = tid() % 8;
                 atomic {
                     a[i] = a[i] + 1;
                     b[i] = b[i] + 1;
                 }
                 atomic {
                     b[i + 8] = b[i + 8] + 1;
                     a[i + 8] = a[i + 8] + 1;
                 }
             }",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
