//! HT — the *hashtable* micro-benchmark (paper Section 4.1).
//!
//! Each transaction inserts elements into a shared open-addressing hash
//! table: probe linearly (transactional reads) until an empty slot is
//! found, then claim it (transactional write). Two transactions racing for
//! the same slot conflict and one retries past it — exactly the dynamic
//! data sharing GPU locks struggle with (the paper calls fine-grained
//! locking for HT infeasible).

use crate::common::{mix64, outcome, RunConfig};
use crate::outcome::{RunError, RunOutcome};
use crate::variant::{dispatch, StmRunner, Variant};
use gpu_sim::{Addr, LaunchConfig, Sim, WarpCtx};
use gpu_stm::{lane_addrs, lane_vals, Stm};
use std::rc::Rc;

/// Hashtable parameters.
#[derive(Copy, Clone, Debug)]
pub struct HtParams {
    /// Table capacity in slots (keep load factor below ~25%).
    pub table_words: u32,
    /// Elements inserted by each transaction.
    pub inserts_per_tx: u32,
    /// Transactions executed by each thread.
    pub txs_per_thread: u32,
    /// RNG/key seed.
    pub seed: u64,
}

impl Default for HtParams {
    fn default() -> Self {
        HtParams { table_words: 256 << 10, inserts_per_tx: 4, txs_per_thread: 1, seed: 0x5eed_0002 }
    }
}

impl HtParams {
    /// Total keys the full grid will insert.
    pub fn total_inserts(&self, grid: LaunchConfig) -> u64 {
        grid.total_threads() * (self.inserts_per_tx * self.txs_per_thread) as u64
    }

    /// The unique, nonzero key inserted as element `i` by thread `tid`.
    pub fn key(&self, tid: u32, i: u32) -> u32 {
        // Dense unique ids, made nonzero; the table hashes them anyway.
        tid * self.inserts_per_tx * self.txs_per_thread + i + 1
    }

    /// Home slot of `key`.
    pub fn slot_of(&self, key: u32) -> u32 {
        (mix64(self.seed ^ key as u64) % self.table_words as u64) as u32
    }
}

struct HtRunner {
    params: HtParams,
    grid: LaunchConfig,
    table: Addr,
}

impl StmRunner for HtRunner {
    type Out = RunOutcome;

    fn run<S: Stm + 'static>(self, sim: &mut Sim, stm: Rc<S>) -> Result<RunOutcome, RunError> {
        let HtRunner { params, grid, table } = self;
        let kstm = Rc::clone(&stm);
        let report = sim.launch(grid, move |ctx: WarpCtx| {
            let stm = Rc::clone(&kstm);
            async move {
                let mut w = stm.new_warp();
                let launch = ctx.id().launch_mask;
                let mut remaining = [params.txs_per_thread; 32];
                ctx.set_speculative(true);
                loop {
                    let pending = launch.filter(|l| remaining[l] > 0);
                    if pending.none() {
                        break;
                    }
                    let active = stm.begin(&mut w, &ctx, pending).await;
                    if active.none() {
                        continue;
                    }
                    let mut ok = active;
                    for i in 0..params.inserts_per_tx {
                        ok &= stm.opaque(&w);
                        if ok.none() {
                            break;
                        }
                        // Element index within this thread's key space.
                        let keys: [u32; 32] = std::array::from_fn(|l| {
                            let tid = ctx.id().thread_id(l);
                            let done =
                                (params.txs_per_thread - remaining[l]) * params.inserts_per_tx;
                            params.key(tid, done + i)
                        });
                        // Linear probing: all unplaced lanes read their
                        // probe slot each round.
                        let mut cursor: [u32; 32] =
                            std::array::from_fn(|l| params.slot_of(keys[l]));
                        let mut probing = ok;
                        while probing.any() {
                            let addrs = lane_addrs(probing, |l| table.offset(cursor[l]));
                            let vals = stm.read(&mut w, &ctx, probing, &addrs).await;
                            probing &= stm.opaque(&w);
                            let empty = probing.filter(|l| vals[l] == 0);
                            if empty.any() {
                                let eaddrs = lane_addrs(empty, |l| table.offset(cursor[l]));
                                let keyv = lane_vals(empty, |l| keys[l]);
                                stm.write(&mut w, &ctx, empty, &eaddrs, &keyv).await;
                            }
                            probing &= !empty;
                            for l in probing.iter() {
                                cursor[l] = (cursor[l] + 1) % params.table_words;
                            }
                        }
                        ok &= stm.opaque(&w);
                    }
                    let committed = stm.commit(&mut w, &ctx, active).await;
                    for l in committed.iter() {
                        remaining[l] -= 1;
                    }
                }
                ctx.set_speculative(false);
            }
        })?;
        Ok(outcome(vec![report], &*stm))
    }
}

/// Runs the hashtable micro-benchmark under `variant` and verifies the
/// table afterwards: exactly the expected keys, each exactly once.
///
/// # Errors
///
/// [`RunError::Verification`] if keys were lost or duplicated; simulator
/// and unsupported-configuration errors otherwise.
pub fn run(
    params: &HtParams,
    variant: Variant,
    grid: LaunchConfig,
    cfg: &RunConfig,
) -> Result<RunOutcome, RunError> {
    let expected = params.total_inserts(grid);
    assert!(
        expected * 4 <= params.table_words as u64,
        "table load factor too high: {expected} inserts into {} slots",
        params.table_words
    );
    let mut sim = Sim::new(cfg.sim.clone());
    let table = sim.alloc(params.table_words)?;
    let out = dispatch(
        &mut sim,
        variant,
        cfg.stm,
        params.table_words as u64,
        grid,
        cfg.recorder.clone(),
        cfg.trace.clone(),
        HtRunner { params: *params, grid, table },
    )?;

    // Verify: every key present exactly once, no foreign values.
    let slots = sim.read_slice(table, params.table_words);
    let mut found: Vec<u32> = slots.iter().copied().filter(|v| *v != 0).collect();
    if found.len() as u64 != expected {
        return Err(RunError::Verification(format!(
            "expected {expected} occupied slots, found {}",
            found.len()
        )));
    }
    found.sort_unstable();
    for (i, k) in found.iter().enumerate() {
        if *k != i as u32 + 1 {
            return Err(RunError::Verification(format!(
                "key set corrupted near index {i}: found {k}"
            )));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (HtParams, LaunchConfig, RunConfig) {
        let params =
            HtParams { table_words: 1 << 11, inserts_per_tx: 2, txs_per_thread: 1, seed: 3 };
        let cfg = RunConfig::with_memory(1 << 16).with_locks(1 << 8);
        (params, LaunchConfig::new(2, 64), cfg)
    }

    #[test]
    fn all_variants_insert_all_keys() {
        let (params, grid, cfg) = tiny();
        for v in Variant::ALL {
            let out = run(&params, v, grid, &cfg).unwrap();
            assert!(out.tx.commits >= grid.total_threads(), "variant {v}");
        }
    }

    #[test]
    fn contended_table_still_correct() {
        // Small table + tiny lock table: heavy conflicts, keys must survive.
        let params =
            HtParams { table_words: 1 << 9, inserts_per_tx: 1, txs_per_thread: 1, seed: 9 };
        let cfg = RunConfig::with_memory(1 << 16).with_locks(1 << 4);
        let grid = LaunchConfig::new(2, 64);
        let out = run(&params, Variant::HvSorting, grid, &cfg).unwrap();
        assert!(out.tx.aborts > 0, "expected contention aborts");
    }

    #[test]
    fn keys_are_unique_per_thread() {
        let p = HtParams::default();
        let a = p.key(0, 0);
        let b = p.key(0, 1);
        let c = p.key(1, 0);
        assert!(a != b && b != c && a != c);
        assert!(a > 0);
    }
}
