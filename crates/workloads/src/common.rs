//! Shared run configuration and helpers for all workloads.

use crate::outcome::RunOutcome;
use gpu_sim::{RunReport, SimConfig};
use gpu_stm::{Recorder, Stm, StmConfig, TxTraceSink};

/// Bundle of knobs common to every workload run.
#[derive(Clone, Debug, Default)]
pub struct RunConfig {
    /// Simulator configuration (timing model, GPU limits, memory size).
    pub sim: SimConfig,
    /// STM configuration (lock-table size, lock-log shape, …).
    pub stm: StmConfig,
    /// Optional history recorder for correctness checking.
    pub recorder: Option<Recorder>,
    /// Optional transaction-lifecycle trace sink ([`gpu_stm::trace`]).
    /// Attach a simulator sink via `sim.trace` for the machine side.
    pub trace: Option<TxTraceSink>,
}

impl RunConfig {
    /// Defaults with a memory capacity of `mem_words`.
    pub fn with_memory(mem_words: usize) -> Self {
        RunConfig { sim: SimConfig::with_memory(mem_words), ..RunConfig::default() }
    }

    /// Sets the number of global version locks.
    pub fn with_locks(mut self, n_locks: u32) -> Self {
        self.stm = StmConfig::new(n_locks);
        self
    }

    /// Attaches a transaction-lifecycle trace sink to every STM variant
    /// the config dispatches.
    pub fn with_trace(mut self, sink: TxTraceSink) -> Self {
        self.trace = Some(sink);
        self
    }
}

/// Packages kernel reports plus the STM's accumulated statistics.
pub fn outcome<S: Stm>(kernels: Vec<RunReport>, stm: &S) -> RunOutcome {
    let tx = stm.stats().borrow().clone();
    RunOutcome { kernels, tx }
}

/// splitmix64 hash, used by workloads for key hashing.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_spreads_consecutive_inputs() {
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 8, "poor diffusion: {a:#x} vs {b:#x}");
    }

    #[test]
    fn run_config_builders() {
        let c = RunConfig::with_memory(1 << 12).with_locks(1 << 8);
        assert_eq!(c.sim.mem_words, 1 << 12);
        assert_eq!(c.stm.n_locks, 1 << 8);
        assert!(c.recorder.is_none());
    }
}
