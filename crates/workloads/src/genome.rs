//! GN — *genome*, ported from STAMP (Minh et al., IISWC 2008) following
//! the paper's array-based GPU port. Gene assembly proceeds in two
//! transaction kernels:
//!
//! - **GN-1 (segment deduplication)**: every thread inserts its DNA
//!   segment into a shared hash set; duplicate segments are recognised
//!   during probing and become read-only transactions.
//! - **GN-2 (overlap linking)**: unique segments are linked into chains by
//!   matching overlaps; each transaction probes the segment table and
//!   writes forward/backward links. The paper's Figure 5 shows this kernel
//!   dominated by STM overhead yet still ~20x faster than CGL.

use crate::common::{mix64, outcome, RunConfig};
use crate::outcome::{RunError, RunOutcome};
use crate::variant::{dispatch, StmRunner, Variant};
use gpu_sim::{Addr, LaunchConfig, Sim, WarpCtx};
use gpu_stm::{lane_addrs, lane_vals, Stm};
use std::rc::Rc;

/// Genome parameters.
#[derive(Copy, Clone, Debug)]
pub struct GnParams {
    /// Total segments (one per GN-1 thread slot).
    pub n_segments: u32,
    /// Segment value space; smaller values mean more duplicates.
    pub value_space: u32,
    /// Hash-set capacity in slots.
    pub table_words: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GnParams {
    fn default() -> Self {
        GnParams {
            n_segments: 16 << 10,
            value_space: 8 << 10,
            table_words: 64 << 10,
            seed: 0x5eed_0004,
        }
    }
}

impl GnParams {
    /// The segment value handled by thread `tid` in GN-1 (nonzero).
    pub fn segment(&self, tid: u32) -> u32 {
        (mix64(self.seed ^ tid as u64) % self.value_space as u64) as u32 + 1
    }

    /// Home slot of a segment value in the hash set.
    pub fn slot_of(&self, value: u32) -> u32 {
        (mix64(self.seed.rotate_left(17) ^ value as u64) % self.table_words as u64) as u32
    }

    /// The successor index a GN-2 transaction links `i` to, among
    /// `n_unique` chain entries (hash-based, so collisions create the
    /// contended `prev` updates).
    pub fn successor(&self, i: u32, n_unique: u32) -> u32 {
        (mix64(self.seed.rotate_left(33) ^ i as u64) % n_unique as u64) as u32
    }
}

/// Result of a full genome run.
#[derive(Clone, Debug)]
pub struct GnOutcome {
    /// Deduplication kernel metrics.
    pub k1: RunOutcome,
    /// Linking kernel metrics.
    pub k2: RunOutcome,
    /// Unique segments found by GN-1.
    pub n_unique: u32,
}

struct DedupRunner {
    params: GnParams,
    grid: LaunchConfig,
    table: Addr,
}

impl StmRunner for DedupRunner {
    type Out = RunOutcome;

    fn run<S: Stm + 'static>(self, sim: &mut Sim, stm: Rc<S>) -> Result<RunOutcome, RunError> {
        let DedupRunner { params, grid, table } = self;
        let kstm = Rc::clone(&stm);
        let report = sim.launch(grid, move |ctx: WarpCtx| {
            let stm = Rc::clone(&kstm);
            async move {
                let mut w = stm.new_warp();
                let launch =
                    ctx.id().launch_mask.filter(|l| ctx.id().thread_id(l) < params.n_segments);
                let mut pending = launch;
                // Native phase: segment hashing/packing before insertion
                // (the STAMP kernel's non-transactional work).
                ctx.idle(160).await;
                ctx.set_speculative(true);
                while pending.any() {
                    let active = stm.begin(&mut w, &ctx, pending).await;
                    if active.none() {
                        continue;
                    }
                    let values: [u32; 32] =
                        std::array::from_fn(|l| params.segment(ctx.id().thread_id(l)));
                    let mut cursor: [u32; 32] = std::array::from_fn(|l| params.slot_of(values[l]));
                    let mut probing = active;
                    while probing.any() {
                        let addrs = lane_addrs(probing, |l| table.offset(cursor[l]));
                        let vals = stm.read(&mut w, &ctx, probing, &addrs).await;
                        probing &= stm.opaque(&w);
                        // Empty slot: claim it. Our value: duplicate, done.
                        let empty = probing.filter(|l| vals[l] == 0);
                        let dup = probing.filter(|l| vals[l] == values[l]);
                        if empty.any() {
                            let ea = lane_addrs(empty, |l| table.offset(cursor[l]));
                            let ev = lane_vals(empty, |l| values[l]);
                            stm.write(&mut w, &ctx, empty, &ea, &ev).await;
                        }
                        probing &= !(empty | dup);
                        for l in probing.iter() {
                            cursor[l] = (cursor[l] + 1) % params.table_words;
                        }
                    }
                    let committed = stm.commit(&mut w, &ctx, active).await;
                    pending &= !committed;
                }
                ctx.set_speculative(false);
            }
        })?;
        Ok(outcome(vec![report], &*stm))
    }
}

struct LinkRunner {
    params: GnParams,
    grid: LaunchConfig,
    n_unique: u32,
    table: Addr,
    next: Addr,
    prev: Addr,
}

impl StmRunner for LinkRunner {
    type Out = RunOutcome;

    fn run<S: Stm + 'static>(self, sim: &mut Sim, stm: Rc<S>) -> Result<RunOutcome, RunError> {
        let LinkRunner { params, grid, n_unique, table, next, prev } = self;
        let kstm = Rc::clone(&stm);
        let report = sim.launch(grid, move |ctx: WarpCtx| {
            let stm = Rc::clone(&kstm);
            async move {
                let mut w = stm.new_warp();
                let launch = ctx.id().launch_mask.filter(|l| ctx.id().thread_id(l) < n_unique);
                let mut pending = launch;
                // Native phase: overlap computation for the match step.
                ctx.idle(80).await;
                ctx.set_speculative(true);
                while pending.any() {
                    let active = stm.begin(&mut w, &ctx, pending).await;
                    if active.none() {
                        continue;
                    }
                    let ids: [u32; 32] = std::array::from_fn(|l| ctx.id().thread_id(l));
                    let succs: [u32; 32] =
                        std::array::from_fn(|l| params.successor(ids[l], n_unique));
                    // Overlap matching: probe the segment table (2 reads),
                    // mimicking the hash lookups of the STAMP kernel.
                    let mut ok = active;
                    for probe in 0..2u32 {
                        ok &= stm.opaque(&w);
                        if ok.none() {
                            break;
                        }
                        let pa = lane_addrs(ok, |l| {
                            table.offset((params.slot_of(succs[l]) + probe) % params.table_words)
                        });
                        let _ = stm.read(&mut w, &ctx, ok, &pa).await;
                    }
                    // Link: next[i] = succ, prev[succ] = i. Collisions on
                    // `succ` are the conflict source.
                    ok &= stm.opaque(&w);
                    if ok.any() {
                        let na = lane_addrs(ok, |l| next.offset(ids[l]));
                        let _cur = stm.read(&mut w, &ctx, ok, &na).await;
                        let pa = lane_addrs(ok, |l| prev.offset(succs[l]));
                        let _old_prev = stm.read(&mut w, &ctx, ok, &pa).await;
                        let ok2 = ok & stm.opaque(&w);
                        stm.write(&mut w, &ctx, ok2, &na, &lane_vals(ok2, |l| succs[l] + 1)).await;
                        stm.write(&mut w, &ctx, ok2, &pa, &lane_vals(ok2, |l| ids[l] + 1)).await;
                    }
                    let committed = stm.commit(&mut w, &ctx, active).await;
                    pending &= !committed;
                }
                ctx.set_speculative(false);
            }
        })?;
        Ok(outcome(vec![report], &*stm))
    }
}

/// Runs both genome kernels under `variant` and verifies the results:
/// GN-1 must leave exactly the distinct segment values in the table, and
/// GN-2's links must be consistent with the successor function.
///
/// # Errors
///
/// [`RunError::Verification`] on invariant violations; simulator and
/// unsupported-configuration errors otherwise.
pub fn run(
    params: &GnParams,
    variant: Variant,
    grid1: LaunchConfig,
    grid2: LaunchConfig,
    cfg: &RunConfig,
) -> Result<GnOutcome, RunError> {
    let mut sim = Sim::new(cfg.sim.clone());
    let table = sim.alloc(params.table_words)?;

    // ---- Kernel 1: dedup ----
    let k1 = dispatch(
        &mut sim,
        variant,
        cfg.stm,
        params.table_words as u64,
        grid1,
        cfg.recorder.clone(),
        cfg.trace.clone(),
        DedupRunner { params: *params, grid: grid1, table },
    )?;

    // Verify dedup against host ground truth.
    let mut expected: Vec<u32> = (0..params.n_segments).map(|t| params.segment(t)).collect();
    expected.sort_unstable();
    expected.dedup();
    let mut found: Vec<u32> =
        sim.read_slice(table, params.table_words).into_iter().filter(|v| *v != 0).collect();
    found.sort_unstable();
    if found != expected {
        return Err(RunError::Verification(format!(
            "dedup table has {} entries, expected {} distinct segments",
            found.len(),
            expected.len()
        )));
    }
    let n_unique = expected.len() as u32;

    // ---- Kernel 2: link ----
    let next = sim.alloc(n_unique)?;
    let prev = sim.alloc(n_unique)?;
    let k2 = dispatch(
        &mut sim,
        variant,
        cfg.stm,
        params.table_words as u64,
        grid2,
        cfg.recorder.clone(),
        cfg.trace.clone(),
        LinkRunner { params: *params, grid: grid2, n_unique, table, next, prev },
    )?;

    // Verify links.
    let next_v = sim.read_slice(next, n_unique);
    let prev_v = sim.read_slice(prev, n_unique);
    for i in 0..n_unique {
        let succ = params.successor(i, n_unique);
        if next_v[i as usize] != succ + 1 {
            return Err(RunError::Verification(format!(
                "next[{i}] = {} but successor is {succ}",
                next_v[i as usize]
            )));
        }
    }
    for (j, p) in prev_v.iter().enumerate() {
        if *p != 0 {
            let i = p - 1;
            if i >= n_unique || params.successor(i, n_unique) != j as u32 {
                return Err(RunError::Verification(format!(
                    "prev[{j}] = {p} names a non-predecessor"
                )));
            }
        }
    }

    Ok(GnOutcome { k1, k2, n_unique })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (GnParams, LaunchConfig, LaunchConfig, RunConfig) {
        let params = GnParams { n_segments: 128, value_space: 64, table_words: 1 << 9, seed: 21 };
        let cfg = RunConfig::with_memory(1 << 16).with_locks(1 << 8);
        (params, LaunchConfig::new(2, 64), LaunchConfig::new(2, 32), cfg)
    }

    #[test]
    fn genome_verifies_under_stm_variants() {
        let (params, g1, g2, cfg) = tiny();
        for v in [Variant::Cgl, Variant::HvSorting, Variant::TbvSorting, Variant::Vbv] {
            let out = run(&params, v, g1, g2, &cfg).unwrap();
            assert!(out.n_unique > 0 && out.n_unique <= 64, "variant {v}");
            assert!(out.k1.tx.commits >= u64::from(params.n_segments), "variant {v}");
        }
    }

    #[test]
    fn duplicates_make_read_only_transactions() {
        let (params, g1, g2, cfg) = tiny();
        let out = run(&params, Variant::HvSorting, g1, g2, &cfg).unwrap();
        // 128 segments into 64 values: at least half are duplicates, which
        // commit read-only in GN-1.
        assert!(out.k1.tx.read_only_commits >= 64);
    }
}
