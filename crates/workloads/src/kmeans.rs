//! KM — *k-means*, ported from STAMP following the paper's GPU port.
//!
//! One clustering iteration: each thread computes its points' nearest
//! centroids (native arithmetic) and transactionally accumulates each
//! point into the shared per-centroid sums and counts. The shared data is
//! tiny (k centroids × dims) and contended by every transaction, so the
//! conflict rate is high and — as the paper's Figure 2 shows — KM gains
//! nothing from STM parallelisation. It is the evaluation's stress case.

use crate::common::{mix64, outcome, RunConfig};
use crate::outcome::{RunError, RunOutcome};
use crate::variant::{dispatch, StmRunner, Variant};
use gpu_sim::{Addr, LaunchConfig, Sim, WarpCtx};
use gpu_stm::{lane_addrs, lane_vals, Stm};
use std::rc::Rc;

/// K-means parameters.
#[derive(Copy, Clone, Debug)]
pub struct KmParams {
    /// Number of clusters (k).
    pub clusters: u32,
    /// Point/centroid dimensionality.
    pub dims: u32,
    /// Points processed by each thread.
    pub points_per_thread: u32,
    /// Coordinate range (values in `0..range`).
    pub range: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KmParams {
    fn default() -> Self {
        KmParams { clusters: 8, dims: 8, points_per_thread: 2, range: 64, seed: 0x5eed_0006 }
    }
}

impl KmParams {
    /// Coordinate `d` of the `j`-th point of thread `tid`.
    pub fn point(&self, tid: u32, j: u32, d: u32) -> u32 {
        (mix64(self.seed ^ ((tid as u64) << 24 | (j as u64) << 8 | d as u64)) % self.range as u64)
            as u32
    }

    /// Coordinate `d` of (fixed, previous-iteration) centroid `c`.
    pub fn centroid(&self, c: u32, d: u32) -> u32 {
        (mix64(self.seed.rotate_left(9) ^ ((c as u64) << 8 | d as u64)) % self.range as u64) as u32
    }

    /// Nearest centroid of the `j`-th point of thread `tid` (squared
    /// Euclidean distance, lowest index wins ties).
    pub fn assignment(&self, tid: u32, j: u32) -> u32 {
        let mut best = 0;
        let mut best_d = u64::MAX;
        for c in 0..self.clusters {
            let mut d2 = 0u64;
            for d in 0..self.dims {
                let diff = self.point(tid, j, d) as i64 - self.centroid(c, d) as i64;
                d2 += (diff * diff) as u64;
            }
            if d2 < best_d {
                best_d = d2;
                best = c;
            }
        }
        best
    }

    /// Shared accumulator size: per-centroid sums plus a count.
    pub fn shared_words(&self) -> u32 {
        self.clusters * (self.dims + 1)
    }
}

struct KmRunner {
    params: KmParams,
    grid: LaunchConfig,
    accum: Addr,
}

impl StmRunner for KmRunner {
    type Out = RunOutcome;

    fn run<S: Stm + 'static>(self, sim: &mut Sim, stm: Rc<S>) -> Result<RunOutcome, RunError> {
        let KmRunner { params, grid, accum } = self;
        let kstm = Rc::clone(&stm);
        let report = sim.launch(grid, move |ctx: WarpCtx| {
            let stm = Rc::clone(&kstm);
            async move {
                let mut w = stm.new_warp();
                let launch = ctx.id().launch_mask;
                let mut remaining = [params.points_per_thread; 32];
                let mut assigned: [u32; 32] = [0; 32];
                let mut fresh = launch;
                ctx.set_speculative(true);
                loop {
                    let pending = launch.filter(|l| remaining[l] > 0);
                    if pending.none() {
                        break;
                    }
                    // Native phase: nearest-centroid computation for lanes
                    // starting a new point (k × dims multiply-accumulate).
                    let starting = pending & fresh;
                    if starting.any() {
                        for l in starting.iter() {
                            let j = params.points_per_thread - remaining[l];
                            assigned[l] = params.assignment(ctx.id().thread_id(l), j);
                        }
                        ctx.idle(4 * (params.clusters * params.dims) as u64).await;
                        fresh &= !starting;
                    }
                    let active = stm.begin(&mut w, &ctx, pending).await;
                    if active.none() {
                        continue;
                    }
                    // Transaction: accumulate the point into its centroid.
                    let mut ok = active;
                    for d in 0..params.dims {
                        ok &= stm.opaque(&w);
                        if ok.none() {
                            break;
                        }
                        let addrs =
                            lane_addrs(ok, |l| accum.offset(assigned[l] * (params.dims + 1) + d));
                        let sums = stm.read(&mut w, &ctx, ok, &addrs).await;
                        let ok2 = ok & stm.opaque(&w);
                        let upd = lane_vals(ok2, |l| {
                            let j = params.points_per_thread - remaining[l];
                            sums[l] + params.point(ctx.id().thread_id(l), j, d)
                        });
                        stm.write(&mut w, &ctx, ok2, &addrs, &upd).await;
                    }
                    ok &= stm.opaque(&w);
                    if ok.any() {
                        let caddr = lane_addrs(ok, |l| {
                            accum.offset(assigned[l] * (params.dims + 1) + params.dims)
                        });
                        let counts = stm.read(&mut w, &ctx, ok, &caddr).await;
                        let ok2 = ok & stm.opaque(&w);
                        stm.write(&mut w, &ctx, ok2, &caddr, &lane_vals(ok2, |l| counts[l] + 1))
                            .await;
                    }
                    let committed = stm.commit(&mut w, &ctx, active).await;
                    for l in committed.iter() {
                        remaining[l] -= 1;
                    }
                    fresh |= committed;
                }
                ctx.set_speculative(false);
            }
        })?;
        Ok(outcome(vec![report], &*stm))
    }
}

/// Runs one k-means accumulation iteration under `variant` and verifies
/// the shared sums and counts against a host recomputation.
///
/// # Errors
///
/// [`RunError::Verification`] when any accumulator diverges from the host
/// ground truth (lost updates).
pub fn run(
    params: &KmParams,
    variant: Variant,
    grid: LaunchConfig,
    cfg: &RunConfig,
) -> Result<RunOutcome, RunError> {
    let mut sim = Sim::new(cfg.sim.clone());
    let accum = sim.alloc(params.shared_words())?;
    let out = dispatch(
        &mut sim,
        variant,
        cfg.stm,
        params.shared_words() as u64,
        grid,
        cfg.recorder.clone(),
        cfg.trace.clone(),
        KmRunner { params: *params, grid, accum },
    )?;

    // Host ground truth.
    let mut expect = vec![0u64; params.shared_words() as usize];
    for tid in 0..grid.total_threads() as u32 {
        for j in 0..params.points_per_thread {
            let c = params.assignment(tid, j);
            for d in 0..params.dims {
                expect[(c * (params.dims + 1) + d) as usize] += params.point(tid, j, d) as u64;
            }
            expect[(c * (params.dims + 1) + params.dims) as usize] += 1;
        }
    }
    let got = sim.read_slice(accum, params.shared_words());
    for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
        if *g as u64 != *e {
            return Err(RunError::Verification(format!("accumulator {i}: device {g}, host {e}")));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (KmParams, LaunchConfig, RunConfig) {
        let params = KmParams { clusters: 4, dims: 4, points_per_thread: 2, range: 32, seed: 13 };
        let cfg = RunConfig::with_memory(1 << 16).with_locks(1 << 8);
        (params, LaunchConfig::new(2, 32), cfg)
    }

    #[test]
    fn accumulators_exact_under_variants() {
        let (params, grid, cfg) = tiny();
        for v in [Variant::Cgl, Variant::HvSorting, Variant::TbvSorting, Variant::Vbv] {
            run(&params, v, grid, &cfg).unwrap_or_else(|e| panic!("variant {v}: {e}"));
        }
    }

    #[test]
    fn kmeans_is_conflict_heavy() {
        let (params, grid, cfg) = tiny();
        let out = run(&params, Variant::HvSorting, grid, &cfg).unwrap();
        assert!(
            out.tx.abort_rate() > 0.2,
            "expected heavy conflicts, abort rate {}",
            out.tx.abort_rate()
        );
    }

    #[test]
    fn assignment_is_nearest() {
        let p = KmParams::default();
        let c = p.assignment(3, 1);
        assert!(c < p.clusters);
        // Exhaustive check against a direct recomputation.
        let mut best = (u64::MAX, 0);
        for cand in 0..p.clusters {
            let d2: u64 = (0..p.dims)
                .map(|d| {
                    let diff = p.point(3, 1, d) as i64 - p.centroid(cand, d) as i64;
                    (diff * diff) as u64
                })
                .sum();
            if d2 < best.0 {
                best = (d2, cand);
            }
        }
        assert_eq!(c, best.1);
    }
}
