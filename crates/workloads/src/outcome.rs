//! Run results and errors shared by all workloads.

use gpu_sim::{RunReport, SimError};
use gpu_stm::TxStats;
use std::error::Error;
use std::fmt;

/// Why a workload run could not produce a result.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum RunError {
    /// Simulator-level failure (allocation, watchdog, launch geometry).
    Sim(SimError),
    /// The selected variant cannot run this configuration (e.g. EGPGV
    /// beyond its per-block metadata) — reported as "crashes" in the
    /// paper's Figure 3.
    Unsupported(&'static str),
    /// The workload's correctness invariant did not hold after the run.
    Verification(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Sim(e) => write!(f, "simulator error: {e}"),
            RunError::Unsupported(msg) => write!(f, "unsupported configuration: {msg}"),
            RunError::Verification(msg) => write!(f, "verification failed: {msg}"),
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

/// Metrics from one workload run (possibly several kernel launches).
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Per-kernel simulator reports, in launch order.
    pub kernels: Vec<RunReport>,
    /// Aggregate transactional statistics.
    pub tx: TxStats,
}

impl RunOutcome {
    /// Total simulated cycles across all kernels.
    pub fn cycles(&self) -> u64 {
        self.kernels.iter().map(|k| k.cycles).sum()
    }

    /// Per-kernel cycle counts.
    pub fn kernel_cycles(&self) -> Vec<u64> {
        self.kernels.iter().map(|k| k.cycles).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::SimStats;

    #[test]
    fn cycles_sum_over_kernels() {
        let out = RunOutcome {
            kernels: vec![
                RunReport { cycles: 10, stats: SimStats::new() },
                RunReport { cycles: 32, stats: SimStats::new() },
            ],
            tx: TxStats::new(),
        };
        assert_eq!(out.cycles(), 42);
        assert_eq!(out.kernel_cycles(), vec![10, 32]);
    }

    #[test]
    fn errors_display_and_convert() {
        let e: RunError = SimError::OutOfMemory { requested: 4 }.into();
        assert!(e.to_string().contains("simulator error"));
        assert!(RunError::Unsupported("x").to_string().contains("unsupported"));
        assert!(RunError::Verification("y".into()).to_string().contains("verification"));
    }

    #[test]
    fn source_chains_to_sim_error_and_only_there() {
        let e: RunError = SimError::Deadlock { cycle: 7, unfinished: vec![] }.into();
        let src = e.source().expect("Sim wraps a cause");
        assert!(src.downcast_ref::<SimError>().is_some());
        assert!(RunError::Unsupported("x").source().is_none());
        assert!(RunError::Verification("y".into()).source().is_none());
    }
}
