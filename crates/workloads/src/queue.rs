//! Queue-shaped workloads for blocking transactions (`gpu_stm::park`).
//!
//! Two condition-synchronisation shapes that plain optimistic STM handles
//! badly (a waiter can only abort-respin, burning cycles to observe the
//! same empty queue) and [`Blocking`] handles well (the waiter parks on
//! its validated read set and is woken by the commit that changes it):
//!
//! * **QU** — a bounded multi-producer/multi-consumer ring. Producers
//!   block when the ring is full (watching `head`), consumers block when
//!   it is empty (watching `tail` and the producers-done counter).
//! * **WS** — a work-stealing deque: the owner pushes and pops LIFO at
//!   the bottom while thieves steal FIFO from the top, blocking when the
//!   deque is empty and work remains in flight.
//!
//! Both verify their transfer (every item delivered exactly once) and
//! run under `park: false` as the abort-respin baseline the benches
//! compare against — same kernels, same schedules, the waiting lanes
//! just spin instead of descheduling.

use crate::common::{outcome, RunConfig};
use crate::outcome::{RunError, RunOutcome};
use crate::variant::Variant;
use gpu_sim::{Addr, LaneMask, LaunchConfig, Sim};
use gpu_stm::{Blocking, LockStm, Stm, StmShared};

/// Bounded producer/consumer ring parameters.
#[derive(Copy, Clone, Debug)]
pub struct QueueParams {
    /// Ring capacity in items (small values force producers to block).
    pub capacity: u32,
    /// Total items transferred (values `1..=items`).
    pub items: u32,
    /// Producer warps (one transactional lane each).
    pub producers: u32,
    /// Consumer warps (one transactional lane each).
    pub consumers: u32,
    /// Blocking `retry()` (true) or the abort-respin baseline (false).
    pub park: bool,
}

impl Default for QueueParams {
    fn default() -> Self {
        QueueParams { capacity: 4, items: 64, producers: 2, consumers: 2, park: true }
    }
}

/// Work-stealing deque parameters.
#[derive(Copy, Clone, Debug)]
pub struct DequeParams {
    /// Deque capacity in items.
    pub capacity: u32,
    /// Total work items (values `1..=items`), all pushed by the owner.
    pub items: u32,
    /// Thief warps stealing from the top.
    pub thieves: u32,
    /// Idle cycles the owner inserts after each committed push; models
    /// per-item spawn work and lets thieves drain the deque (and block)
    /// between pushes.
    pub stagger: u32,
    /// Blocking `retry()` (true) or the abort-respin baseline (false).
    pub park: bool,
}

impl Default for DequeParams {
    fn default() -> Self {
        DequeParams { capacity: 8, items: 64, thieves: 2, stagger: 8000, park: true }
    }
}

/// Builds the blocking STM for `variant`. Blocking needs to *own* its
/// inner runtime (the registry's device anchors are allocated here), so
/// the shapes are restricted to the per-thread lock-based variants; the
/// blocking baseline comparison never needs the rest.
fn blocking_stm(
    sim: &mut Sim,
    variant: Variant,
    cfg: &RunConfig,
) -> Result<Blocking<LockStm>, RunError> {
    let stm_cfg = cfg.stm;
    let shared = StmShared::init(sim, &stm_cfg)?;
    let mut inner = match variant {
        Variant::TbvSorting => LockStm::tbv_sorting(shared, stm_cfg),
        Variant::HvSorting => LockStm::hv_sorting(shared, stm_cfg),
        Variant::HvBackoff => LockStm::hv_backoff(shared, stm_cfg),
        Variant::TbvBackoff => LockStm::tbv_backoff(shared, stm_cfg),
        _ => {
            return Err(RunError::Unsupported(
                "blocking queue workloads require a per-thread lock-based STM variant",
            ))
        }
    };
    if let Some(rec) = cfg.recorder.clone() {
        inner = inner.with_recorder(rec);
    }
    if let Some(t) = cfg.trace.clone() {
        inner = inner.with_trace(t);
    }
    let mut stm = Blocking::new(sim, inner, &stm_cfg)?;
    if let Some(t) = cfg.trace.clone() {
        stm = stm.with_trace(t);
    }
    Ok(stm)
}

/// Device layout of the ring (or deque): two cursors, a done/remaining
/// word, the slots, and the per-item delivery flags.
struct Ring {
    head: Addr, // pop cursor (deque: top)
    tail: Addr, // push cursor (deque: bottom)
    ctrl: Addr, // queue: producers-done count; deque: items remaining
    slots: Addr,
    out: Addr,
}

fn alloc_ring(sim: &mut Sim, capacity: u32, items: u32) -> Result<Ring, RunError> {
    Ok(Ring {
        head: sim.alloc(1)?,
        tail: sim.alloc(1)?,
        ctrl: sim.alloc(1)?,
        slots: sim.alloc(capacity)?,
        out: sim.alloc(items)?,
    })
}

fn verify_delivery(sim: &Sim, ring: &Ring, items: u32) -> Result<(), RunError> {
    let flags = sim.read_slice(ring.out, items);
    if let Some(i) = flags.iter().position(|&f| f != 1) {
        return Err(RunError::Verification(format!(
            "item {} delivered {} times (want exactly once)",
            i + 1,
            flags[i]
        )));
    }
    let head = sim.read(ring.head);
    let tail = sim.read(ring.tail);
    if head != tail {
        return Err(RunError::Verification(format!("ring not drained: head={head} tail={tail}")));
    }
    Ok(())
}

/// Runs the bounded producer/consumer ring under `variant`.
///
/// Producers split `1..=items` round-robin; each pushes into the ring,
/// blocking while it is full, then increments the producers-done word.
/// Consumers pop until the ring is empty *and* every producer finished.
/// Every delivered item sets its flag transactionally, so verification
/// catches losses and duplicates alike.
///
/// # Errors
///
/// Simulator failures, unsupported variants, and delivery-verification
/// failures.
pub fn run_queue(
    params: &QueueParams,
    variant: Variant,
    cfg: &RunConfig,
) -> Result<RunOutcome, RunError> {
    let p = *params;
    if p.capacity == 0 || p.items == 0 || p.producers == 0 || p.consumers == 0 {
        return Err(RunError::Verification("queue params must all be non-zero".to_string()));
    }
    let mut sim = Sim::new(cfg.sim.clone());
    let ring = alloc_ring(&mut sim, p.capacity, p.items)?;
    let stm = blocking_stm(&mut sim, variant, cfg)?;
    let stm = if p.park { stm } else { stm.clone().without_park() };
    let (head_a, tail_a, done_a, slots, out) =
        (ring.head, ring.tail, ring.ctrl, ring.slots, ring.out);

    let warps = p.producers + p.consumers;
    let grid = LaunchConfig::new(1, warps * 32);
    let kstm = stm.clone();
    let report = sim.launch(grid, move |ctx| {
        let stm = kstm.clone();
        async move {
            let mut w = stm.new_warp();
            let wid = ctx.id().warp_in_block;
            let lane = 0usize;
            let m = LaneMask::lane(lane);
            ctx.set_speculative(true);
            if wid < p.producers {
                // Producer: push my share, blocking while the ring is full.
                let mut next = wid + 1; // items wid+1, wid+1+P, ... (1-based)
                while next <= p.items {
                    let active = stm.begin(&mut w, &ctx, m).await;
                    let head = stm.read_one(&mut w, &ctx, lane, head_a).await;
                    let tail = stm.read_one(&mut w, &ctx, lane, tail_a).await;
                    let mut pushed = false;
                    if stm.opaque(&w).contains(lane) {
                        if tail.wrapping_sub(head) >= p.capacity {
                            stm.retry(&mut w, m); // full: wait for a pop
                        } else {
                            let slot = slots.offset(tail % p.capacity);
                            stm.write_one(&mut w, &ctx, lane, slot, next).await;
                            stm.write_one(&mut w, &ctx, lane, tail_a, tail.wrapping_add(1)).await;
                            pushed = true;
                        }
                    }
                    let o = stm.commit_or_park(&mut w, &ctx, active).await;
                    if o.committed.contains(lane) && pushed {
                        next += p.producers;
                    }
                }
                // Announce completion (wakes consumers waiting on empty).
                loop {
                    let active = stm.begin(&mut w, &ctx, m).await;
                    let d = stm.read_one(&mut w, &ctx, lane, done_a).await;
                    stm.write_one(&mut w, &ctx, lane, done_a, d.wrapping_add(1)).await;
                    let o = stm.commit_or_park(&mut w, &ctx, active).await;
                    if o.committed.contains(lane) {
                        break;
                    }
                }
            } else {
                // Consumer: pop until empty and all producers are done.
                loop {
                    let active = stm.begin(&mut w, &ctx, m).await;
                    let head = stm.read_one(&mut w, &ctx, lane, head_a).await;
                    let tail = stm.read_one(&mut w, &ctx, lane, tail_a).await;
                    let mut finished = false;
                    if stm.opaque(&w).contains(lane) {
                        if head != tail {
                            let slot = slots.offset(head % p.capacity);
                            let v = stm.read_one(&mut w, &ctx, lane, slot).await;
                            if stm.opaque(&w).contains(lane) {
                                stm.write_one(&mut w, &ctx, lane, head_a, head.wrapping_add(1))
                                    .await;
                                // Delivery flag; modulo keeps a doomed
                                // lane's garbage value in bounds (its
                                // buffered write is discarded anyway).
                                let flag = out.offset(v.wrapping_sub(1) % p.items);
                                let n = stm.read_one(&mut w, &ctx, lane, flag).await;
                                stm.write_one(&mut w, &ctx, lane, flag, n.wrapping_add(1)).await;
                            }
                        } else {
                            let d = stm.read_one(&mut w, &ctx, lane, done_a).await;
                            if stm.opaque(&w).contains(lane) && d == p.producers {
                                finished = true; // read-only commit, then exit
                            } else {
                                stm.retry(&mut w, m); // empty: wait for a push
                            }
                        }
                    }
                    let o = stm.commit_or_park(&mut w, &ctx, active).await;
                    if o.committed.contains(lane) && finished {
                        break;
                    }
                }
            }
            ctx.set_speculative(false);
        }
    })?;
    verify_delivery(&sim, &ring, p.items)?;
    Ok(outcome(vec![report], &stm))
}

/// Runs the work-stealing deque under `variant`.
///
/// One owner warp pushes `1..=items` at the bottom, popping LIFO from
/// its own end when the deque is full; thief warps steal FIFO from the
/// top, blocking while the deque is empty and work remains. The shared
/// `remaining` word counts unprocessed items; processing (flag write +
/// decrement) happens inside the pop/steal transaction, so the count and
/// the flags agree under any interleaving.
///
/// # Errors
///
/// Simulator failures, unsupported variants, and delivery-verification
/// failures.
pub fn run_deque(
    params: &DequeParams,
    variant: Variant,
    cfg: &RunConfig,
) -> Result<RunOutcome, RunError> {
    let p = *params;
    if p.capacity == 0 || p.items == 0 || p.thieves == 0 {
        return Err(RunError::Verification("deque params must all be non-zero".to_string()));
    }
    let mut sim = Sim::new(cfg.sim.clone());
    let ring = alloc_ring(&mut sim, p.capacity, p.items)?;
    sim.write(ring.ctrl, p.items); // remaining
    let stm = blocking_stm(&mut sim, variant, cfg)?;
    let stm = if p.park { stm } else { stm.clone().without_park() };
    let (top_a, bot_a, rem_a, slots, out) = (ring.head, ring.tail, ring.ctrl, ring.slots, ring.out);

    let grid = LaunchConfig::new(1, (1 + p.thieves) * 32);
    let kstm = stm.clone();
    let report = sim.launch(grid, move |ctx| {
        let stm = kstm.clone();
        async move {
            let mut w = stm.new_warp();
            let wid = ctx.id().warp_in_block;
            let lane = 0usize;
            let m = LaneMask::lane(lane);
            ctx.set_speculative(true);
            // Everyone processes one item the same way: claim it, mark
            // its flag, decrement the remaining count — atomically.
            macro_rules! process {
                ($v:expr) => {{
                    let flag = out.offset($v.wrapping_sub(1) % p.items);
                    let n = stm.read_one(&mut w, &ctx, lane, flag).await;
                    stm.write_one(&mut w, &ctx, lane, flag, n.wrapping_add(1)).await;
                    let r = stm.read_one(&mut w, &ctx, lane, rem_a).await;
                    stm.write_one(&mut w, &ctx, lane, rem_a, r.wrapping_sub(1)).await;
                }};
            }
            if wid == 0 {
                // Owner: push everything, popping LIFO when full; then
                // help drain until nothing remains.
                let mut next = 1u32;
                loop {
                    let active = stm.begin(&mut w, &ctx, m).await;
                    let top = stm.read_one(&mut w, &ctx, lane, top_a).await;
                    let bot = stm.read_one(&mut w, &ctx, lane, bot_a).await;
                    let mut pushed = false;
                    let mut finished = false;
                    if stm.opaque(&w).contains(lane) {
                        if next <= p.items && bot.wrapping_sub(top) < p.capacity {
                            let slot = slots.offset(bot % p.capacity);
                            stm.write_one(&mut w, &ctx, lane, slot, next).await;
                            stm.write_one(&mut w, &ctx, lane, bot_a, bot.wrapping_add(1)).await;
                            pushed = true;
                        } else if bot != top {
                            // Pop own bottom (LIFO).
                            let b1 = bot.wrapping_sub(1);
                            let slot = slots.offset(b1 % p.capacity);
                            let v = stm.read_one(&mut w, &ctx, lane, slot).await;
                            if stm.opaque(&w).contains(lane) {
                                stm.write_one(&mut w, &ctx, lane, bot_a, b1).await;
                                process!(v);
                            }
                        } else {
                            let r = stm.read_one(&mut w, &ctx, lane, rem_a).await;
                            if stm.opaque(&w).contains(lane) && r == 0 {
                                finished = true;
                            } else {
                                stm.retry(&mut w, m); // stolen work in flight
                            }
                        }
                    }
                    let o = stm.commit_or_park(&mut w, &ctx, active).await;
                    if o.committed.contains(lane) {
                        if pushed {
                            next += 1;
                            if p.stagger > 0 {
                                ctx.idle(p.stagger as u64).await;
                            }
                        }
                        if finished {
                            break;
                        }
                    }
                }
            } else {
                // Thief: steal FIFO from the top until nothing remains.
                loop {
                    let active = stm.begin(&mut w, &ctx, m).await;
                    let top = stm.read_one(&mut w, &ctx, lane, top_a).await;
                    let bot = stm.read_one(&mut w, &ctx, lane, bot_a).await;
                    let mut finished = false;
                    if stm.opaque(&w).contains(lane) {
                        if top != bot {
                            let slot = slots.offset(top % p.capacity);
                            let v = stm.read_one(&mut w, &ctx, lane, slot).await;
                            if stm.opaque(&w).contains(lane) {
                                stm.write_one(&mut w, &ctx, lane, top_a, top.wrapping_add(1)).await;
                                process!(v);
                            }
                        } else {
                            let r = stm.read_one(&mut w, &ctx, lane, rem_a).await;
                            if stm.opaque(&w).contains(lane) && r == 0 {
                                finished = true;
                            } else {
                                stm.retry(&mut w, m); // empty: wait for a push
                            }
                        }
                    }
                    let o = stm.commit_or_park(&mut w, &ctx, active).await;
                    if o.committed.contains(lane) && finished {
                        break;
                    }
                }
            }
            ctx.set_speculative(false);
        }
    })?;
    verify_delivery(&sim, &ring, p.items)?;
    if sim.read(ring.ctrl) != 0 {
        return Err(RunError::Verification(format!(
            "remaining count not drained: {}",
            sim.read(ring.ctrl)
        )));
    }
    Ok(outcome(vec![report], &stm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_stm::Phase;

    fn cfg() -> RunConfig {
        RunConfig::with_memory(1 << 16).with_locks(1 << 8)
    }

    #[test]
    fn queue_transfers_every_item_exactly_once() {
        let params = QueueParams::default();
        let out = run_queue(&params, Variant::HvSorting, &cfg()).unwrap();
        assert!(out.tx.parks >= 1, "an empty or full ring must park someone");
        assert_eq!(out.tx.parks, out.tx.wakes);
        assert!(out.tx.breakdown.get(Phase::Parked) > 0.0);
    }

    #[test]
    fn queue_blocks_consumers_on_initially_empty_ring() {
        // More consumers than producers and few items: consumers must
        // block at least at startup and near the drain.
        let params = QueueParams { capacity: 2, items: 8, producers: 1, consumers: 3, park: true };
        let out = run_queue(&params, Variant::HvSorting, &cfg()).unwrap();
        assert!(out.tx.parks >= 1);
    }

    #[test]
    fn queue_baseline_never_parks_but_still_delivers() {
        let params = QueueParams { park: false, ..QueueParams::default() };
        let out = run_queue(&params, Variant::HvSorting, &cfg()).unwrap();
        assert_eq!(out.tx.parks, 0);
        assert_eq!(out.tx.breakdown.get(Phase::Parked), 0.0);
    }

    #[test]
    fn parked_waiters_burn_fewer_instructions_than_respin() {
        let park = run_queue(&QueueParams::default(), Variant::HvSorting, &cfg()).unwrap();
        let base = run_queue(
            &QueueParams { park: false, ..QueueParams::default() },
            Variant::HvSorting,
            &cfg(),
        )
        .unwrap();
        let park_instr: u64 = park.kernels.iter().map(|k| k.stats.instructions).sum();
        let base_instr: u64 = base.kernels.iter().map(|k| k.stats.instructions).sum();
        assert!(
            base_instr > park_instr,
            "respin baseline must execute more instructions: base={base_instr} park={park_instr}"
        );
    }

    #[test]
    fn deque_drains_under_stealing() {
        let params = DequeParams::default();
        let out = run_deque(&params, Variant::HvSorting, &cfg()).unwrap();
        assert!(out.tx.parks >= 1, "thieves must block on the initially empty deque");
        assert_eq!(out.tx.parks, out.tx.wakes);
    }

    #[test]
    fn deque_baseline_matches_delivery_without_parking() {
        let params = DequeParams { park: false, ..DequeParams::default() };
        let out = run_deque(&params, Variant::HvSorting, &cfg()).unwrap();
        assert_eq!(out.tx.parks, 0);
    }

    #[test]
    fn queue_runs_under_every_lock_variant() {
        let params = QueueParams { capacity: 2, items: 16, producers: 1, consumers: 1, park: true };
        for v in [Variant::TbvSorting, Variant::HvSorting, Variant::HvBackoff, Variant::TbvBackoff]
        {
            run_queue(&params, v, &cfg()).unwrap_or_else(|e| panic!("{v}: {e}"));
        }
    }

    #[test]
    fn unsupported_variants_are_rejected() {
        let err = run_queue(&QueueParams::default(), Variant::Cgl, &cfg()).unwrap_err();
        assert!(matches!(err, RunError::Unsupported(_)));
        let err = run_deque(&DequeParams::default(), Variant::Vbv, &cfg()).unwrap_err();
        assert!(matches!(err, RunError::Unsupported(_)));
    }

    #[test]
    fn zero_params_rejected() {
        let err = run_queue(
            &QueueParams { producers: 0, ..QueueParams::default() },
            Variant::HvSorting,
            &cfg(),
        )
        .unwrap_err();
        assert!(matches!(err, RunError::Verification(_)));
    }
}
