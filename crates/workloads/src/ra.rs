//! RA — the *random array* micro-benchmark (paper Section 4.1, Figure 1).
//!
//! Each transaction performs a fixed number of actions, each a read or a
//! write of a uniformly random element of one shared array. The paper's
//! configuration shares 8M elements among 64K transactions with 1M version
//! locks, making the shared data much larger than the lock table — the
//! regime in which hierarchical validation beats pure TBV.

use crate::common::{outcome, RunConfig};
use crate::outcome::{RunError, RunOutcome};
use crate::variant::{dispatch, StmRunner, Variant};
use gpu_sim::{LaunchConfig, Sim, WarpCtx, WarpRng};
use gpu_stm::{lane_addrs, lane_vals, Stm};
use std::rc::Rc;

/// Random-array parameters.
#[derive(Copy, Clone, Debug)]
pub struct RaParams {
    /// Shared array size in words (paper: 8M; default scaled 1/64).
    pub shared_words: u32,
    /// Actions (reads or writes) per transaction.
    pub actions_per_tx: u32,
    /// Transactions executed by each thread.
    pub txs_per_thread: u32,
    /// Percentage of actions that are writes (0–100).
    pub write_pct: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RaParams {
    fn default() -> Self {
        RaParams {
            shared_words: 128 << 10,
            actions_per_tx: 8,
            txs_per_thread: 1,
            write_pct: 50,
            seed: 0x5eed_0001,
        }
    }
}

struct RaRunner {
    params: RaParams,
    grid: LaunchConfig,
    data: gpu_sim::Addr,
}

impl StmRunner for RaRunner {
    type Out = RunOutcome;

    fn run<S: Stm + 'static>(self, sim: &mut Sim, stm: Rc<S>) -> Result<RunOutcome, RunError> {
        let RaRunner { params, grid, data } = self;
        let kstm = Rc::clone(&stm);
        let report = sim.launch(grid, move |ctx: WarpCtx| {
            let stm = Rc::clone(&kstm);
            async move {
                let mut w = stm.new_warp();
                let mut rng = WarpRng::new(params.seed, ctx.id().thread_id(0));
                let launch = ctx.id().launch_mask;
                let mut remaining = [params.txs_per_thread; 32];
                // The whole retry loop is speculative: the race detector
                // must not pair transactional accesses (STM orders them).
                ctx.set_speculative(true);
                loop {
                    let pending = launch.filter(|l| remaining[l] > 0);
                    if pending.none() {
                        break;
                    }
                    let active = stm.begin(&mut w, &ctx, pending).await;
                    if active.none() {
                        continue;
                    }
                    let mut ok = active;
                    for _ in 0..params.actions_per_tx {
                        ok &= stm.opaque(&w);
                        if ok.none() {
                            break;
                        }
                        // Per-lane random action and address (Figure 1).
                        let do_write = ok.filter(|l| rng.chance(l, params.write_pct, 100));
                        let addrs =
                            lane_addrs(ok, |l| data.offset(rng.below(l, params.shared_words)));
                        let readers = ok & !do_write;
                        if readers.any() {
                            let _ = stm.read(&mut w, &ctx, readers, &addrs).await;
                        }
                        let writers = ok & do_write & stm.opaque(&w);
                        if writers.any() {
                            let vals = lane_vals(writers, |l| rng.next_u32(l) | 1);
                            stm.write(&mut w, &ctx, writers, &addrs, &vals).await;
                        }
                    }
                    let committed = stm.commit(&mut w, &ctx, active).await;
                    for l in committed.iter() {
                        remaining[l] -= 1;
                    }
                }
                ctx.set_speculative(false);
            }
        })?;
        Ok(outcome(vec![report], &*stm))
    }
}

/// Runs the RA micro-benchmark under `variant`.
///
/// # Errors
///
/// Propagates simulator failures and unsupported variant/grid combinations.
pub fn run(
    params: &RaParams,
    variant: Variant,
    grid: LaunchConfig,
    cfg: &RunConfig,
) -> Result<RunOutcome, RunError> {
    let mut sim = Sim::new(cfg.sim.clone());
    let data = sim.alloc(params.shared_words)?;
    dispatch(
        &mut sim,
        variant,
        cfg.stm,
        params.shared_words as u64,
        grid,
        cfg.recorder.clone(),
        cfg.trace.clone(),
        RaRunner { params: *params, grid, data },
    )
}

/// Like [`run`] but also returns the simulator, so tests can inspect final
/// memory against a recorded history.
pub fn run_with_sim(
    params: &RaParams,
    variant: Variant,
    grid: LaunchConfig,
    cfg: &RunConfig,
) -> Result<(RunOutcome, Sim, gpu_sim::Addr), RunError> {
    let mut sim = Sim::new(cfg.sim.clone());
    let data = sim.alloc(params.shared_words)?;
    let out = dispatch(
        &mut sim,
        variant,
        cfg.stm,
        params.shared_words as u64,
        grid,
        cfg.recorder.clone(),
        cfg.trace.clone(),
        RaRunner { params: *params, grid, data },
    )?;
    Ok((out, sim, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (RaParams, LaunchConfig, RunConfig) {
        let params = RaParams {
            shared_words: 1 << 10,
            actions_per_tx: 4,
            txs_per_thread: 2,
            write_pct: 50,
            seed: 7,
        };
        let cfg = RunConfig::with_memory(1 << 16).with_locks(1 << 8);
        (params, LaunchConfig::new(2, 64), cfg)
    }

    #[test]
    fn all_variants_commit_every_transaction() {
        let (params, grid, cfg) = tiny();
        for v in Variant::ALL {
            let out = run(&params, v, grid, &cfg).unwrap();
            assert_eq!(
                out.tx.commits,
                grid.total_threads() * params.txs_per_thread as u64,
                "variant {v}"
            );
        }
    }

    #[test]
    fn zero_write_pct_is_read_only() {
        let (mut params, grid, cfg) = tiny();
        params.write_pct = 0;
        let out = run(&params, Variant::HvSorting, grid, &cfg).unwrap();
        assert_eq!(out.tx.read_only_commits, out.tx.commits);
        assert_eq!(out.tx.aborts, 0);
    }

    #[test]
    fn egpgv_rejects_oversized_grids() {
        let (params, _, cfg) = tiny();
        let err = run(&params, Variant::Egpgv, LaunchConfig::new(128, 64), &cfg).unwrap_err();
        assert!(matches!(err, RunError::Unsupported(_)));
    }
}
