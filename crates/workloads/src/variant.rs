//! Concurrency-control variant selection and dispatch.
//!
//! Workload kernels are generic over [`Stm`]; this module instantiates them
//! for each concrete variant of the paper's evaluation (Section 4.2).

use crate::outcome::RunError;
use gpu_sim::{LaunchConfig, Sim};
use gpu_stm::{
    CglStm, EgpgvStm, LockStm, NorecStm, OptimizedStm, Recorder, Stm, StmConfig, StmShared,
    TxTraceSink,
};
use std::rc::Rc;

/// One of the evaluated concurrency-control schemes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Coarse-grained lock baseline (speedup denominator).
    Cgl,
    /// Cederman et al.'s per-thread-block blocking STM.
    Egpgv,
    /// NOrec-like single-sequence-lock STM (STM-VBV).
    Vbv,
    /// Timestamp validation + lock-sorting (STM-TBV-Sorting).
    TbvSorting,
    /// Hierarchical validation + lock-sorting (STM-HV-Sorting).
    HvSorting,
    /// Hierarchical validation + backoff locking (STM-HV-Backoff).
    HvBackoff,
    /// Timestamp validation + backoff locking (ablation only).
    TbvBackoff,
    /// Adaptive HV/TBV selection + lock-sorting (STM-Optimized).
    Optimized,
}

impl Variant {
    /// The STM variants of the paper's Figure 2, in its legend order.
    pub const FIGURE2: [Variant; 6] = [
        Variant::Egpgv,
        Variant::Vbv,
        Variant::TbvSorting,
        Variant::HvBackoff,
        Variant::HvSorting,
        Variant::Optimized,
    ];

    /// Every variant including the baseline and ablation extras.
    pub const ALL: [Variant; 8] = [
        Variant::Cgl,
        Variant::Egpgv,
        Variant::Vbv,
        Variant::TbvSorting,
        Variant::HvSorting,
        Variant::HvBackoff,
        Variant::TbvBackoff,
        Variant::Optimized,
    ];

    /// Paper display name.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Cgl => "CGL",
            Variant::Egpgv => "STM-EGPGV",
            Variant::Vbv => "STM-VBV",
            Variant::TbvSorting => "STM-TBV-Sorting",
            Variant::HvSorting => "STM-HV-Sorting",
            Variant::HvBackoff => "STM-HV-Backoff",
            Variant::TbvBackoff => "STM-TBV-Backoff",
            Variant::Optimized => "STM-Optimized",
        }
    }

    /// Short machine-friendly name (CLI arguments, report keys).
    pub fn short_name(self) -> &'static str {
        match self {
            Variant::Cgl => "cgl",
            Variant::Egpgv => "egpgv",
            Variant::Vbv => "vbv",
            Variant::TbvSorting => "tbv-sorting",
            Variant::HvSorting => "hv-sorting",
            Variant::HvBackoff => "hv-backoff",
            Variant::TbvBackoff => "tbv-backoff",
            Variant::Optimized => "optimized",
        }
    }

    /// Parses a variant from its short name or paper label
    /// (case-insensitive).
    pub fn parse(s: &str) -> Option<Variant> {
        let lower = s.to_ascii_lowercase();
        Variant::ALL
            .into_iter()
            .find(|v| v.short_name() == lower || v.label().to_ascii_lowercase() == lower)
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A computation generic over the concrete STM type — the only way to pass
/// a "generic closure" in stable Rust.
pub trait StmRunner {
    /// Result of the run.
    type Out;
    /// Runs the workload with a concrete STM instance.
    fn run<S: Stm + 'static>(self, sim: &mut Sim, stm: Rc<S>) -> Result<Self::Out, RunError>;
}

/// Instantiates `variant` (allocating its metadata in `sim`) and invokes
/// `runner` with the concrete STM.
///
/// `shared_data_words` drives STM-Optimized's HV/TBV choice; `grid` is used
/// to reject launches the EGPGV design cannot support. A `trace` sink, when
/// given, receives the variant's transaction-lifecycle events
/// ([`gpu_stm::trace`]).
///
/// # Errors
///
/// [`RunError::Unsupported`] when `variant` cannot run `grid`
/// (EGPGV beyond its per-block metadata), or any simulator error.
#[allow(clippy::too_many_arguments)] // one optional observer per concern; a builder would obscure the call sites
pub fn dispatch<R: StmRunner>(
    sim: &mut Sim,
    variant: Variant,
    stm_cfg: StmConfig,
    shared_data_words: u64,
    grid: LaunchConfig,
    recorder: Option<Recorder>,
    trace: Option<TxTraceSink>,
    runner: R,
) -> Result<R::Out, RunError> {
    match variant {
        Variant::Cgl => {
            let mut stm = CglStm::init(sim)?;
            if let Some(rec) = recorder {
                stm = stm.with_recorder(rec);
            }
            if let Some(t) = trace {
                stm = stm.with_trace(t);
            }
            runner.run(sim, Rc::new(stm))
        }
        Variant::Egpgv => {
            let shared = StmShared::init(sim, &stm_cfg)?;
            let mut stm = EgpgvStm::init(sim, shared, stm_cfg)?;
            if let Some(rec) = recorder {
                stm = stm.with_recorder(rec);
            }
            if let Some(t) = trace {
                stm = stm.with_trace(t);
            }
            if !stm.supports(grid) {
                return Err(RunError::Unsupported(
                    "STM-EGPGV supports per-thread-block transactions only up to its fixed \
                     per-block metadata capacity",
                ));
            }
            runner.run(sim, Rc::new(stm))
        }
        Variant::Vbv => {
            let shared = StmShared::init(sim, &stm_cfg)?;
            let mut stm = NorecStm::new(shared, stm_cfg);
            if let Some(rec) = recorder {
                stm = stm.with_recorder(rec);
            }
            if let Some(t) = trace {
                stm = stm.with_trace(t);
            }
            runner.run(sim, Rc::new(stm))
        }
        Variant::Optimized => {
            let shared = StmShared::init(sim, &stm_cfg)?;
            let mut stm = OptimizedStm::new(shared, stm_cfg, shared_data_words);
            if let Some(rec) = recorder {
                stm = stm.with_recorder(rec);
            }
            if let Some(t) = trace {
                stm = stm.with_trace(t);
            }
            runner.run(sim, Rc::new(stm))
        }
        Variant::TbvSorting | Variant::HvSorting | Variant::HvBackoff | Variant::TbvBackoff => {
            let shared = StmShared::init(sim, &stm_cfg)?;
            let mut stm = match variant {
                Variant::TbvSorting => LockStm::tbv_sorting(shared, stm_cfg),
                Variant::HvSorting => LockStm::hv_sorting(shared, stm_cfg),
                Variant::HvBackoff => LockStm::hv_backoff(shared, stm_cfg),
                _ => LockStm::tbv_backoff(shared, stm_cfg),
            };
            if let Some(rec) = recorder {
                stm = stm.with_recorder(rec);
            }
            if let Some(t) = trace {
                stm = stm.with_trace(t);
            }
            runner.run(sim, Rc::new(stm))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let set: std::collections::HashSet<_> = Variant::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(set.len(), Variant::ALL.len());
    }

    #[test]
    fn figure2_excludes_baseline() {
        assert!(!Variant::FIGURE2.contains(&Variant::Cgl));
        assert_eq!(Variant::FIGURE2.len(), 6);
    }

    #[test]
    fn parse_round_trips_short_names_and_labels() {
        for v in Variant::ALL {
            assert_eq!(Variant::parse(v.short_name()), Some(v));
            assert_eq!(Variant::parse(v.label()), Some(v));
            assert_eq!(Variant::parse(&v.label().to_uppercase()), Some(v));
        }
        assert_eq!(Variant::parse("no-such-stm"), None);
    }
}
