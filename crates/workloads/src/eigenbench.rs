//! EB — the *EigenBench* micro-benchmark (Hong et al., IISWC 2010), used
//! by the paper for the HV-vs-TBV comparison (Figure 4) because its
//! orthogonal knobs isolate TM characteristics:
//!
//! - **hot** array: shared, accessed transactionally by all threads — its
//!   size relative to the lock table controls false-conflict pressure;
//! - **mild** array: thread-private but accessed transactionally —
//!   inflates read-/write-sets without adding conflicts;
//! - **cold** array: thread-private, accessed outside transactions —
//!   native work that dilutes transaction time.

use crate::common::{outcome, RunConfig};
use crate::outcome::{RunError, RunOutcome};
use crate::variant::{dispatch, StmRunner, Variant};
use gpu_sim::{LaunchConfig, Sim, WarpCtx, WarpRng};
use gpu_stm::{lane_addrs, lane_vals, Stm};
use std::rc::Rc;

/// EigenBench parameters.
#[derive(Copy, Clone, Debug)]
pub struct EbParams {
    /// Hot (shared) array size in words — the paper sweeps 1M–64M.
    pub hot_words: u32,
    /// Transactional reads of the hot array per transaction (R1).
    pub hot_reads: u32,
    /// Transactional writes of the hot array per transaction (W1).
    pub hot_writes: u32,
    /// Private words per thread in the mild array.
    pub mild_words: u32,
    /// Transactional reads/writes of the mild array per transaction (R2/W2).
    pub mild_ops: u32,
    /// Private words per thread in the cold array.
    pub cold_words: u32,
    /// Non-transactional reads/writes of the cold array between
    /// transactions (R3/W3).
    pub cold_ops: u32,
    /// Transactions per thread.
    pub txs_per_thread: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EbParams {
    fn default() -> Self {
        EbParams {
            hot_words: 128 << 10,
            hot_reads: 8,
            hot_writes: 4,
            mild_words: 8,
            mild_ops: 2,
            cold_words: 8,
            cold_ops: 4,
            txs_per_thread: 2,
            seed: 0x5eed_0003,
        }
    }
}

struct EbRunner {
    params: EbParams,
    grid: LaunchConfig,
    hot: gpu_sim::Addr,
    mild: gpu_sim::Addr,
    cold: gpu_sim::Addr,
}

impl StmRunner for EbRunner {
    type Out = RunOutcome;

    fn run<S: Stm + 'static>(self, sim: &mut Sim, stm: Rc<S>) -> Result<RunOutcome, RunError> {
        let EbRunner { params, grid, hot, mild, cold } = self;
        let kstm = Rc::clone(&stm);
        let report = sim.launch(grid, move |ctx: WarpCtx| {
            let stm = Rc::clone(&kstm);
            async move {
                let mut w = stm.new_warp();
                let mut rng = WarpRng::new(params.seed, ctx.id().thread_id(0));
                let launch = ctx.id().launch_mask;
                let mut remaining = [params.txs_per_thread; 32];
                loop {
                    let pending = launch.filter(|l| remaining[l] > 0);
                    if pending.none() {
                        break;
                    }
                    // Only begin..commit is speculative: the cold phase
                    // below is genuinely non-transactional (thread-private)
                    // and must stay visible to the race detector.
                    ctx.set_speculative(true);
                    let active = stm.begin(&mut w, &ctx, pending).await;
                    if active.none() {
                        ctx.set_speculative(false);
                        continue;
                    }
                    let mut ok = active;
                    // Hot-array transactional traffic.
                    for op in 0..(params.hot_reads + params.hot_writes) {
                        ok &= stm.opaque(&w);
                        if ok.none() {
                            break;
                        }
                        let addrs = lane_addrs(ok, |l| hot.offset(rng.below(l, params.hot_words)));
                        if op < params.hot_reads {
                            let _ = stm.read(&mut w, &ctx, ok, &addrs).await;
                        } else {
                            let vals = lane_vals(ok, |l| rng.next_u32(l));
                            stm.write(&mut w, &ctx, ok, &addrs, &vals).await;
                        }
                    }
                    // Mild-array traffic: private, still transactional.
                    for op in 0..params.mild_ops * 2 {
                        ok &= stm.opaque(&w);
                        if ok.none() {
                            break;
                        }
                        let addrs = lane_addrs(ok, |l| {
                            let tid = ctx.id().thread_id(l);
                            mild.offset(tid * params.mild_words + rng.below(l, params.mild_words))
                        });
                        if op < params.mild_ops {
                            let _ = stm.read(&mut w, &ctx, ok, &addrs).await;
                        } else {
                            let vals = lane_vals(ok, |l| rng.next_u32(l));
                            stm.write(&mut w, &ctx, ok, &addrs, &vals).await;
                        }
                    }
                    let committed = stm.commit(&mut w, &ctx, active).await;
                    ctx.set_speculative(false);
                    for l in committed.iter() {
                        remaining[l] -= 1;
                    }
                    // Cold (native) phase between transactions.
                    if committed.any() {
                        for _ in 0..params.cold_ops {
                            let addrs = lane_addrs(committed, |l| {
                                let tid = ctx.id().thread_id(l);
                                cold.offset(
                                    tid * params.cold_words + rng.below(l, params.cold_words),
                                )
                            });
                            let vals = ctx.load(committed, &addrs).await;
                            let upd = lane_vals(committed, |l| vals[l].wrapping_add(1));
                            ctx.store(committed, &addrs, &upd).await;
                        }
                    }
                }
            }
        })?;
        Ok(outcome(vec![report], &*stm))
    }
}

/// Runs EigenBench under `variant`.
///
/// # Errors
///
/// Propagates simulator failures and unsupported variant/grid combinations.
pub fn run(
    params: &EbParams,
    variant: Variant,
    grid: LaunchConfig,
    cfg: &RunConfig,
) -> Result<RunOutcome, RunError> {
    let mut sim = Sim::new(cfg.sim.clone());
    let threads = grid.total_threads() as u32;
    let hot = sim.alloc(params.hot_words)?;
    let mild = sim.alloc(threads * params.mild_words)?;
    let cold = sim.alloc(threads * params.cold_words)?;
    dispatch(
        &mut sim,
        variant,
        cfg.stm,
        params.hot_words as u64,
        grid,
        cfg.recorder.clone(),
        cfg.trace.clone(),
        EbRunner { params: *params, grid, hot, mild, cold },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (EbParams, LaunchConfig, RunConfig) {
        let params = EbParams {
            hot_words: 1 << 10,
            hot_reads: 4,
            hot_writes: 2,
            mild_words: 4,
            mild_ops: 1,
            cold_words: 4,
            cold_ops: 2,
            txs_per_thread: 2,
            seed: 11,
        };
        let cfg = RunConfig::with_memory(1 << 17).with_locks(1 << 8);
        (params, LaunchConfig::new(2, 64), cfg)
    }

    #[test]
    fn variants_commit_all_transactions() {
        let (params, grid, cfg) = tiny();
        for v in [Variant::Cgl, Variant::Vbv, Variant::TbvSorting, Variant::HvSorting] {
            let out = run(&params, v, grid, &cfg).unwrap();
            assert_eq!(
                out.tx.commits,
                grid.total_threads() * params.txs_per_thread as u64,
                "variant {v}"
            );
        }
    }

    #[test]
    fn hv_filters_false_conflicts_with_tiny_lock_table() {
        let (mut params, grid, _) = tiny();
        params.hot_words = 1 << 12;
        params.txs_per_thread = 4;
        // 16 locks for 4096 hot words: stripe aliasing everywhere.
        let cfg = RunConfig::with_memory(1 << 18).with_locks(1 << 4);
        let hv = run(&params, Variant::HvSorting, grid, &cfg).unwrap();
        let tbv = run(&params, Variant::TbvSorting, grid, &cfg).unwrap();
        assert!(hv.tx.false_conflicts_filtered > 0, "HV should observe stale-but-unchanged reads");
        assert!(
            hv.tx.abort_rate() <= tbv.tx.abort_rate(),
            "HV abort rate {} should not exceed TBV {}",
            hv.tx.abort_rate(),
            tbv.tx.abort_rate()
        );
    }
}
