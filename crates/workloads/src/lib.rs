//! # workloads — the GPU-STM evaluation suite
//!
//! The six workloads of the paper's Section 4.1, each runnable under every
//! concurrency-control [`Variant`] (all STM flavours, the EGPGV prior-art
//! STM, and the coarse-grained-lock baseline) with built-in result
//! verification:
//!
//! | Paper name | Module | Character |
//! |---|---|---|
//! | RA (random array) | [`ra`] | uniform random reads/writes, large shared data |
//! | HT (hashtable) | [`ht`] | probing inserts, modest conflicts |
//! | EB (EigenBench) | [`eigenbench`] | reconfigurable TM characteristics |
//! | GN (genome) | [`genome`] | two kernels: dedup insert + overlap linking |
//! | LB (labyrinth) | [`labyrinth`] | long path-claim transactions |
//! | KM (k-means) | [`kmeans`] | tiny hot shared data, high conflicts |
//!
//! Beyond the paper's six, [`queue`] adds two condition-synchronisation
//! shapes (a bounded producer/consumer ring and a work-stealing deque)
//! exercising the blocking `retry()`/`or_else` subsystem of
//! [`gpu_stm::park`], with an abort-respin baseline knob.
//!
//! All workloads are deterministic given their seed, so cycle counts,
//! commit/abort statistics and final memory are reproducible bit-for-bit.

#![warn(missing_docs)]

mod common;
pub mod eigenbench;
pub mod genome;
pub mod ht;
pub mod kmeans;
pub mod labyrinth;
mod outcome;
pub mod queue;
pub mod ra;
mod variant;

pub use common::{mix64, RunConfig};
pub use outcome::{RunError, RunOutcome};
pub use variant::{dispatch, StmRunner, Variant};
