//! LB — *labyrinth*, ported from STAMP following the paper's array-based
//! GPU port: Lee-style maze routing where each transaction atomically
//! claims an entire path through a shared grid.
//!
//! Threads pull (source, destination) work items from a queue, compute an
//! L-shaped candidate route (native work), then transactionally read every
//! cell on the route (it must be free) and write their claim to all of
//! them. Routes are long, so read- and write-sets are large — the paper's
//! Table 1 lists LB with the biggest per-transaction footprints, and its
//! shared data (the grid) exceeds the lock table, favouring hierarchical
//! validation.

use crate::common::{mix64, outcome, RunConfig};
use crate::outcome::{RunError, RunOutcome};
use crate::variant::{dispatch, StmRunner, Variant};
use gpu_sim::{Addr, AtomicOp, LaneMask, LaunchConfig, Sim, WarpCtx, WARP_SIZE};
use gpu_stm::{lane_addrs, lane_vals, Stm};
use std::rc::Rc;

/// Labyrinth parameters.
#[derive(Copy, Clone, Debug)]
pub struct LbParams {
    /// Grid width in cells.
    pub width: u32,
    /// Grid height in cells.
    pub height: u32,
    /// Number of (source, destination) pairs to route.
    pub n_paths: u32,
    /// Maximum |Δx| and |Δy| between a route's endpoints. Bounded spans
    /// keep pairwise route-crossing probability low ("modest conflicts",
    /// as the paper's Table 1 characterises LB); `0` means unbounded.
    pub max_span: u32,
    /// RNG seed for endpoint placement.
    pub seed: u64,
}

impl Default for LbParams {
    fn default() -> Self {
        LbParams { width: 192, height: 192, n_paths: 96, max_span: 24, seed: 0x5eed_0005 }
    }
}

impl LbParams {
    /// Endpoints of path `p`: `((sx, sy), (dx, dy))`, deterministic.
    pub fn endpoints(&self, p: u32) -> ((u32, u32), (u32, u32)) {
        let a = mix64(self.seed ^ (2 * p) as u64);
        let b = mix64(self.seed ^ (2 * p + 1) as u64);
        let sx = (a % self.width as u64) as u32;
        let sy = ((a >> 32) % self.height as u64) as u32;
        let (dx, dy) = if self.max_span == 0 {
            ((b % self.width as u64) as u32, ((b >> 32) % self.height as u64) as u32)
        } else {
            let span = 2 * self.max_span as u64 + 1;
            let ox = (b % span) as i64 - self.max_span as i64;
            let oy = ((b >> 32) % span) as i64 - self.max_span as i64;
            (
                (sx as i64 + ox).clamp(0, self.width as i64 - 1) as u32,
                (sy as i64 + oy).clamp(0, self.height as i64 - 1) as u32,
            )
        };
        ((sx, sy), (dx, dy))
    }

    /// Cell index of `(x, y)`.
    pub fn cell(&self, x: u32, y: u32) -> u32 {
        y * self.width + x
    }

    /// The L-shaped route for path `p`. `bend_first_x` selects
    /// horizontal-then-vertical (`true`) or vertical-then-horizontal.
    pub fn route(&self, p: u32, bend_first_x: bool) -> Vec<u32> {
        let ((sx, sy), (dx, dy)) = self.endpoints(p);
        let mut cells = Vec::new();
        let push = |x: u32, y: u32, cells: &mut Vec<u32>| {
            let c = self.cell(x, y);
            if cells.last() != Some(&c) {
                cells.push(c);
            }
        };
        let (mut x, mut y) = (sx, sy);
        push(x, y, &mut cells);
        if bend_first_x {
            while x != dx {
                x = if dx > x { x + 1 } else { x - 1 };
                push(x, y, &mut cells);
            }
            while y != dy {
                y = if dy > y { y + 1 } else { y - 1 };
                push(x, y, &mut cells);
            }
        } else {
            while y != dy {
                y = if dy > y { y + 1 } else { y - 1 };
                push(x, y, &mut cells);
            }
            while x != dx {
                x = if dx > x { x + 1 } else { x - 1 };
                push(x, y, &mut cells);
            }
        }
        cells
    }
}

/// Outcome of a labyrinth run: base metrics plus routing results.
#[derive(Clone, Debug)]
pub struct LbOutcome {
    /// Common metrics.
    pub base: RunOutcome,
    /// Paths successfully claimed.
    pub routed: u32,
    /// Paths abandoned because both L-routes were blocked.
    pub blocked: u32,
}

struct LbRunner {
    params: LbParams,
    grid: LaunchConfig,
    cells: Addr,
    queue: Addr,
    result: Addr,
}

impl StmRunner for LbRunner {
    type Out = RunOutcome;

    fn run<S: Stm + 'static>(self, sim: &mut Sim, stm: Rc<S>) -> Result<RunOutcome, RunError> {
        let LbRunner { params, grid, cells, queue, result } = self;
        let kstm = Rc::clone(&stm);
        let report = sim.launch(grid, move |ctx: WarpCtx| {
            let stm = Rc::clone(&kstm);
            async move {
                let mut w = stm.new_warp();
                let launch = ctx.id().launch_mask;
                // Per-lane routing state.
                let mut path: [Option<u32>; WARP_SIZE] = [None; WARP_SIZE];
                let mut attempt_bend: [bool; WARP_SIZE] = [true; WARP_SIZE];
                let mut routes: Vec<Vec<u32>> = vec![Vec::new(); WARP_SIZE];
                let mut done = LaneMask::EMPTY;
                ctx.set_speculative(true);
                loop {
                    // Claim new work items for idle lanes (non-transactional
                    // queue pop, as in the STAMP port).
                    let idle = launch & !done;
                    let need_work = idle.filter(|l| path[l].is_none());
                    if need_work.any() {
                        let old = ctx
                            .atomic_rmw(
                                need_work,
                                AtomicOp::Add,
                                &[queue; WARP_SIZE],
                                &[1u32; WARP_SIZE],
                            )
                            .await;
                        for l in need_work.iter() {
                            if old[l] < params.n_paths {
                                path[l] = Some(old[l]);
                                attempt_bend[l] = true;
                                routes[l] = params.route(old[l], true);
                            } else {
                                done |= LaneMask::lane(l);
                            }
                        }
                    }
                    let pending = launch & !done;
                    if pending.none() {
                        break;
                    }
                    // Native route computation cost: proportional to length.
                    let max_len = pending.iter().map(|l| routes[l].len()).max().unwrap_or(0);
                    ctx.idle(20 * max_len as u64).await;

                    let active = stm.begin(&mut w, &ctx, pending).await;
                    if active.none() {
                        continue;
                    }
                    // Transactionally read every cell of the route.
                    let mut free = active; // lanes whose route is entirely free
                    let rounds = active.iter().map(|l| routes[l].len()).max().unwrap_or(0);
                    let mut scanning = active;
                    for k in 0..rounds {
                        scanning &= stm.opaque(&w);
                        let m = scanning.filter(|l| k < routes[l].len());
                        if m.none() {
                            break;
                        }
                        let addrs = lane_addrs(m, |l| cells.offset(routes[l][k]));
                        let vals = stm.read(&mut w, &ctx, m, &addrs).await;
                        for l in m.iter() {
                            if vals[l] != 0 {
                                free = free.without(l);
                                scanning = scanning.without(l); // blocked: stop scanning
                            }
                        }
                    }
                    free &= stm.opaque(&w);
                    // Claim free routes: write owner id to every cell plus
                    // the result flag, atomically with the reads.
                    if free.any() {
                        let rounds = free.iter().map(|l| routes[l].len()).max().unwrap_or(0);
                        for k in 0..rounds {
                            let m = free.filter(|l| k < routes[l].len());
                            if m.none() {
                                break;
                            }
                            let addrs = lane_addrs(m, |l| cells.offset(routes[l][k]));
                            let vals = lane_vals(m, |l| path[l].unwrap() + 1);
                            stm.write(&mut w, &ctx, m, &addrs, &vals).await;
                        }
                        let raddr = lane_addrs(free, |l| result.offset(path[l].unwrap()));
                        let rval = lane_vals(free, |l| if attempt_bend[l] { 1 } else { 2 });
                        stm.write(&mut w, &ctx, free, &raddr, &rval).await;
                    }
                    let committed = stm.commit(&mut w, &ctx, active).await;
                    for l in committed.iter() {
                        if free.contains(l) {
                            path[l] = None; // routed; pull next work item
                        } else {
                            // Route blocked (committed read-only): try the
                            // other bend, then give up.
                            if attempt_bend[l] {
                                attempt_bend[l] = false;
                                routes[l] = params.route(path[l].unwrap(), false);
                            } else {
                                path[l] = None; // both bends blocked: abandon
                            }
                        }
                    }
                }
                ctx.set_speculative(false);
            }
        })?;
        Ok(outcome(vec![report], &*stm))
    }
}

/// Runs labyrinth under `variant` and verifies that claimed routes are
/// disjoint and complete.
///
/// # Errors
///
/// [`RunError::Verification`] if any claimed cell does not belong to the
/// recorded route of its owner, or a routed path is incompletely claimed.
pub fn run(
    params: &LbParams,
    variant: Variant,
    grid: LaunchConfig,
    cfg: &RunConfig,
) -> Result<LbOutcome, RunError> {
    let mut sim = Sim::new(cfg.sim.clone());
    let n_cells = params.width * params.height;
    let cells = sim.alloc(n_cells)?;
    let queue = sim.alloc(1)?;
    let result = sim.alloc(params.n_paths)?;
    let base = dispatch(
        &mut sim,
        variant,
        cfg.stm,
        n_cells as u64,
        grid,
        cfg.recorder.clone(),
        cfg.trace.clone(),
        LbRunner { params: *params, grid, cells, queue, result },
    )?;

    // Verification: each routed path fully owns its cells; every claimed
    // cell belongs to exactly the route that claims it.
    let grid_v = sim.read_slice(cells, n_cells);
    let result_v = sim.read_slice(result, params.n_paths);
    let mut routed = 0;
    let mut blocked = 0;
    let mut owned = vec![0u32; n_cells as usize];
    for p in 0..params.n_paths {
        match result_v[p as usize] {
            0 => blocked += 1,
            bend @ (1 | 2) => {
                routed += 1;
                for c in params.route(p, bend == 1) {
                    if grid_v[c as usize] != p + 1 {
                        return Err(RunError::Verification(format!(
                            "path {p} cell {c} owned by {}",
                            grid_v[c as usize]
                        )));
                    }
                    owned[c as usize] = p + 1;
                }
            }
            other => return Err(RunError::Verification(format!("result[{p}] corrupted: {other}"))),
        }
    }
    for (c, v) in grid_v.iter().enumerate() {
        if *v != 0 && owned[c] != *v {
            return Err(RunError::Verification(format!(
                "cell {c} claimed by {v} outside any routed path"
            )));
        }
    }
    Ok(LbOutcome { base, routed, blocked })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (LbParams, LaunchConfig, RunConfig) {
        let params = LbParams { width: 32, height: 32, n_paths: 12, max_span: 8, seed: 5 };
        let cfg = RunConfig::with_memory(1 << 16).with_locks(1 << 8);
        (params, LaunchConfig::new(2, 32), cfg)
    }

    #[test]
    fn routes_are_l_shaped_and_connected() {
        let p = LbParams { width: 16, height: 16, n_paths: 4, max_span: 0, seed: 1 };
        for i in 0..4 {
            for bend in [true, false] {
                let r = p.route(i, bend);
                let ((sx, sy), (dx, dy)) = p.endpoints(i);
                assert_eq!(r[0], p.cell(sx, sy));
                assert_eq!(*r.last().unwrap(), p.cell(dx, dy));
                for w in r.windows(2) {
                    let (a, b) = (w[0], w[1]);
                    let (ax, ay) = (a % p.width, a / p.width);
                    let (bx, by) = (b % p.width, b / p.width);
                    assert_eq!(ax.abs_diff(bx) + ay.abs_diff(by), 1, "route not contiguous");
                }
            }
        }
    }

    #[test]
    fn labyrinth_routes_disjoint_under_variants() {
        let (params, grid, cfg) = tiny();
        for v in [Variant::Cgl, Variant::HvSorting, Variant::TbvSorting] {
            let out = run(&params, v, grid, &cfg).unwrap();
            assert_eq!(out.routed + out.blocked, params.n_paths, "variant {v}");
            assert!(out.routed > 0, "variant {v} routed nothing");
        }
    }

    #[test]
    fn deterministic_routing() {
        let (params, grid, cfg) = tiny();
        let a = run(&params, Variant::HvSorting, grid, &cfg).unwrap();
        let b = run(&params, Variant::HvSorting, grid, &cfg).unwrap();
        assert_eq!(a.routed, b.routed);
        assert_eq!(a.base.cycles(), b.base.cycles());
    }
}
