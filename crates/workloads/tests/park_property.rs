//! Park/wake liveness as a property: across seeded workload shapes,
//! every parked transaction is either eventually woken (parks == wakes
//! at quiescence) or the run ends in a *reported* all-parked deadlock —
//! never a silent lost wakeup. Each shape is also run twice to pin the
//! counters as deterministic; the worker-count-independence leg of the
//! same property lives in tm-serve's blocking report tests.

use gpu_sim::{LaneMask, LaunchConfig, Sim, SimConfig, SimError};
use gpu_stm::{Blocking, LockStm, Stm, StmConfig, StmShared};
use workloads::queue::{run_deque, run_queue, DequeParams, QueueParams};
use workloads::{mix64, RunConfig, Variant};

/// Derives a queue shape from a seed: small rings and asymmetric
/// producer/consumer counts so both full-ring and empty-ring parks are
/// exercised somewhere in the sweep.
fn shape(seed: u64) -> QueueParams {
    let r = |k: u64, span: u64| (mix64(seed ^ (k << 32)) % span) as u32;
    QueueParams {
        capacity: 1 + r(1, 4),
        items: 16 + r(2, 33),
        producers: 1 + r(3, 3),
        consumers: 1 + r(4, 3),
        park: true,
    }
}

fn cfg(spurious_permille: u32) -> RunConfig {
    let mut cfg = RunConfig::with_memory(1 << 16).with_locks(1 << 8);
    cfg.stm.spurious_wake_rate = spurious_permille;
    cfg
}

#[test]
fn every_queue_park_is_woken_across_seeds() {
    for seed in 0..8u64 {
        // Odd seeds inject spurious wakes so the revalidate-and-re-park
        // loop is part of the property, not a separate code path.
        let spurious = if seed % 2 == 1 { 200 } else { 0 };
        let params = shape(seed);
        let out = run_queue(&params, Variant::HvSorting, &cfg(spurious))
            .unwrap_or_else(|e| panic!("seed {seed} ({params:?}): {e}"));
        assert_eq!(
            out.tx.parks, out.tx.wakes,
            "seed {seed} ({params:?}): a parked transaction was lost"
        );
        if spurious == 0 {
            assert_eq!(out.tx.spurious_wakes, 0, "seed {seed}: uninjected spurious wake");
        }
    }
}

#[test]
fn deque_parks_resolve_across_seeds() {
    for seed in 0..3u64 {
        let r = |k: u64, span: u64| (mix64(seed ^ (k << 24)) % span) as u32;
        let params = DequeParams {
            capacity: 4 + r(1, 5),
            items: 24 + r(2, 17),
            thieves: 1 + r(3, 3),
            stagger: 4000,
            park: true,
        };
        let out = run_deque(&params, Variant::HvSorting, &cfg(0))
            .unwrap_or_else(|e| panic!("seed {seed} ({params:?}): {e}"));
        assert_eq!(
            out.tx.parks, out.tx.wakes,
            "seed {seed} ({params:?}): a parked transaction was lost"
        );
    }
}

#[test]
fn park_counters_are_deterministic_per_seed() {
    for seed in [0u64, 1, 5] {
        let spurious = if seed % 2 == 1 { 200 } else { 0 };
        let params = shape(seed);
        let run = || {
            let out = run_queue(&params, Variant::HvSorting, &cfg(spurious)).unwrap();
            let instr: u64 = out.kernels.iter().map(|k| k.stats.instructions).sum();
            (out.tx.parks, out.tx.wakes, out.tx.spurious_wakes, out.tx.commits, instr)
        };
        assert_eq!(run(), run(), "seed {seed}: park accounting must be reproducible");
    }
}

/// The complement of the liveness property: a park nobody can wake must
/// surface as `SimError::Deadlock` carrying the watched addresses — not
/// hang, not time out, not report success.
#[test]
fn never_woken_park_reports_deadlock_with_watched_address() {
    let cfg = StmConfig::new(1 << 8);
    let mut sim = Sim::new(SimConfig::with_memory(1 << 16));
    let shared = StmShared::init(&mut sim, &cfg).unwrap();
    let stm = Blocking::new(&mut sim, LockStm::hv_sorting(shared, cfg), &cfg).unwrap();
    let flag = sim.alloc(1).unwrap();
    let stm2 = stm.clone();
    let err = sim
        .launch(LaunchConfig::new(1, 32), move |ctx| {
            let stm = stm2.clone();
            async move {
                let mut w = stm.new_warp();
                let m = LaneMask::lane(0);
                let mut pending = m;
                while pending.any() {
                    let active = stm.begin(&mut w, &ctx, pending).await;
                    let v = stm.read_one(&mut w, &ctx, 0, flag).await;
                    if v == 0 {
                        stm.retry(&mut w, m); // no producer exists: unwakeable
                    }
                    let o = stm.commit_or_park(&mut w, &ctx, active).await;
                    pending &= !o.committed;
                }
            }
        })
        .expect_err("an unwakeable park must not report success");
    match err {
        SimError::Deadlock { ref unfinished, .. } => {
            let parked: Vec<_> = unfinished.iter().filter(|w| !w.parked_addrs.is_empty()).collect();
            assert!(!parked.is_empty(), "diagnostics must show the parked warp: {err}");
            assert!(
                parked.iter().any(|w| w.parked_addrs.contains(&flag)),
                "diagnostics must name the watched address: {err}"
            );
        }
        other => panic!("expected Deadlock, got {other}"),
    }
}
